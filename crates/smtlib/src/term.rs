//! The SMT-LIB term AST.
//!
//! Terms are immutable reference-counted trees ([`Term`] wraps an
//! `Arc<TermKind>`), so structural sharing makes substitution-heavy fusion
//! workloads cheap. Constructors live on [`Term`]; n-ary applications
//! debug-assert their arity.

use crate::sort::Sort;
use crate::symbol::Symbol;
use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;
use yinyang_arith::{BigInt, BigRational};

/// Operators of the core, arithmetic, string, and regular-expression
/// theories.
///
/// Canonical (printed) names follow SMT-LIB 2.6; the parser additionally
/// accepts the legacy Z3 spellings used in the paper (`str.in.re`,
/// `str.to.int`, ...).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum Op {
    // -- Core ---------------------------------------------------------------
    Not,
    Implies,
    And,
    Or,
    Xor,
    Eq,
    Distinct,
    Ite,
    // -- Arithmetic ----------------------------------------------------------
    /// Unary negation `(- t)`.
    Neg,
    Add,
    /// N-ary left-associative subtraction `(- a b c)`.
    Sub,
    Mul,
    /// Real division `(/ a b)`.
    RealDiv,
    /// Integer Euclidean division `(div a b)`.
    IntDiv,
    /// Integer Euclidean remainder `(mod a b)`.
    Mod,
    Abs,
    Le,
    Lt,
    Ge,
    Gt,
    ToReal,
    ToInt,
    IsInt,
    // -- Strings --------------------------------------------------------------
    /// String concatenation `str.++`.
    StrConcat,
    StrLen,
    /// Character at index: `(str.at s i)` — a string of length 0 or 1.
    StrAt,
    /// `(str.substr s off len)`.
    StrSubstr,
    StrPrefixOf,
    StrSuffixOf,
    StrContains,
    /// `(str.indexof s t i)`.
    StrIndexOf,
    /// Replace first occurrence: `(str.replace s t r)`.
    StrReplace,
    StrReplaceAll,
    /// Regular-expression membership `(str.in_re s R)`.
    StrInRe,
    /// Constant-string-to-regex injection `(str.to_re s)`.
    StrToRe,
    /// `(str.to_int s)` — −1 if `s` is not a digit string.
    StrToInt,
    /// `(str.from_int i)` — empty string for negative `i`.
    StrFromInt,
    // -- Regular expressions ---------------------------------------------------
    ReNone,
    ReAll,
    ReAllChar,
    ReConcat,
    ReUnion,
    ReInter,
    ReStar,
    RePlus,
    ReOpt,
    /// `(re.range "a" "z")`.
    ReRange,
}

/// Arity constraint of an [`Op`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Arity {
    /// Exactly this many arguments.
    Exact(usize),
    /// At least this many arguments (variadic).
    AtLeast(usize),
}

impl Arity {
    /// Whether `n` arguments satisfy this arity.
    pub fn admits(self, n: usize) -> bool {
        match self {
            Arity::Exact(k) => n == k,
            Arity::AtLeast(k) => n >= k,
        }
    }
}

impl Op {
    /// The canonical SMT-LIB 2.6 spelling.
    pub fn name(self) -> &'static str {
        match self {
            Op::Not => "not",
            Op::Implies => "=>",
            Op::And => "and",
            Op::Or => "or",
            Op::Xor => "xor",
            Op::Eq => "=",
            Op::Distinct => "distinct",
            Op::Ite => "ite",
            Op::Neg | Op::Sub => "-",
            Op::Add => "+",
            Op::Mul => "*",
            Op::RealDiv => "/",
            Op::IntDiv => "div",
            Op::Mod => "mod",
            Op::Abs => "abs",
            Op::Le => "<=",
            Op::Lt => "<",
            Op::Ge => ">=",
            Op::Gt => ">",
            Op::ToReal => "to_real",
            Op::ToInt => "to_int",
            Op::IsInt => "is_int",
            Op::StrConcat => "str.++",
            Op::StrLen => "str.len",
            Op::StrAt => "str.at",
            Op::StrSubstr => "str.substr",
            Op::StrPrefixOf => "str.prefixof",
            Op::StrSuffixOf => "str.suffixof",
            Op::StrContains => "str.contains",
            Op::StrIndexOf => "str.indexof",
            Op::StrReplace => "str.replace",
            Op::StrReplaceAll => "str.replace_all",
            Op::StrInRe => "str.in_re",
            Op::StrToRe => "str.to_re",
            Op::StrToInt => "str.to_int",
            Op::StrFromInt => "str.from_int",
            Op::ReNone => "re.none",
            Op::ReAll => "re.all",
            Op::ReAllChar => "re.allchar",
            Op::ReConcat => "re.++",
            Op::ReUnion => "re.union",
            Op::ReInter => "re.inter",
            Op::ReStar => "re.*",
            Op::RePlus => "re.+",
            Op::ReOpt => "re.opt",
            Op::ReRange => "re.range",
        }
    }

    /// The arity constraint of this operator.
    pub fn arity(self) -> Arity {
        use Arity::*;
        match self {
            Op::Not | Op::Neg | Op::Abs | Op::ToReal | Op::ToInt | Op::IsInt => Exact(1),
            Op::StrLen | Op::StrToRe | Op::StrToInt | Op::StrFromInt => Exact(1),
            Op::ReStar | Op::RePlus | Op::ReOpt => Exact(1),
            Op::Implies => AtLeast(2),
            Op::And | Op::Or | Op::Xor => AtLeast(2),
            Op::Eq | Op::Distinct => AtLeast(2),
            Op::Ite => Exact(3),
            Op::Add | Op::Mul | Op::Sub => AtLeast(2),
            Op::RealDiv | Op::IntDiv | Op::Mod => AtLeast(2),
            Op::Le | Op::Lt | Op::Ge | Op::Gt => AtLeast(2),
            Op::StrConcat => AtLeast(2),
            Op::StrAt => Exact(2),
            Op::StrSubstr => Exact(3),
            Op::StrPrefixOf | Op::StrSuffixOf | Op::StrContains => Exact(2),
            Op::StrIndexOf => Exact(3),
            Op::StrReplace | Op::StrReplaceAll => Exact(3),
            Op::StrInRe => Exact(2),
            Op::ReNone | Op::ReAll | Op::ReAllChar => Exact(0),
            Op::ReConcat | Op::ReUnion | Op::ReInter => AtLeast(2),
            Op::ReRange => Exact(2),
        }
    }

    /// `true` for the boolean-sorted predicates and connectives.
    pub fn returns_bool(self) -> bool {
        matches!(
            self,
            Op::Not
                | Op::Implies
                | Op::And
                | Op::Or
                | Op::Xor
                | Op::Eq
                | Op::Distinct
                | Op::Le
                | Op::Lt
                | Op::Ge
                | Op::Gt
                | Op::IsInt
                | Op::StrPrefixOf
                | Op::StrSuffixOf
                | Op::StrContains
                | Op::StrInRe
        )
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Quantifier kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Quantifier {
    /// `forall`.
    Forall,
    /// `exists`.
    Exists,
}

impl Quantifier {
    /// SMT-LIB keyword.
    pub fn name(self) -> &'static str {
        match self {
            Quantifier::Forall => "forall",
            Quantifier::Exists => "exists",
        }
    }
}

/// The kinds of term nodes. Access via [`Term::kind`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum TermKind {
    /// `true` / `false`.
    BoolConst(bool),
    /// Integer numeral.
    IntConst(BigInt),
    /// Real decimal.
    RealConst(BigRational),
    /// String literal.
    StringConst(String),
    /// Free or bound variable occurrence.
    Var(Symbol),
    /// Operator application.
    App(Op, Vec<Term>),
    /// `forall`/`exists` binder.
    Quant(Quantifier, Vec<(Symbol, Sort)>, Term),
    /// `let` binder (parallel bindings, SMT-LIB semantics).
    Let(Vec<(Symbol, Term)>, Term),
}

/// An immutable, cheaply-clonable SMT-LIB term.
///
/// # Examples
///
/// ```
/// use yinyang_smtlib::Term;
///
/// let x = Term::var("x");
/// let t = Term::gt(x, Term::int(0));
/// assert_eq!(t.to_string(), "(> x 0)");
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Term(Arc<TermKind>);

impl Term {
    /// Wraps a [`TermKind`].
    ///
    /// # Panics
    ///
    /// Debug-panics when an application violates its operator's arity.
    pub fn new(kind: TermKind) -> Self {
        if let TermKind::App(op, args) = &kind {
            debug_assert!(
                op.arity().admits(args.len()),
                "operator {op} applied to {} arguments",
                args.len()
            );
        }
        Term(Arc::new(kind))
    }

    /// The node this term points at.
    pub fn kind(&self) -> &TermKind {
        &self.0
    }

    /// Pointer equality — true structural sharing, not structural equality.
    pub fn ptr_eq(&self, other: &Term) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }

    // -- constants -----------------------------------------------------------

    /// The boolean constant `true`.
    pub fn tru() -> Term {
        Term::new(TermKind::BoolConst(true))
    }

    /// The boolean constant `false`.
    pub fn fals() -> Term {
        Term::new(TermKind::BoolConst(false))
    }

    /// A boolean constant.
    pub fn bool(b: bool) -> Term {
        Term::new(TermKind::BoolConst(b))
    }

    /// An integer constant from `i64`.
    pub fn int(v: i64) -> Term {
        Term::new(TermKind::IntConst(BigInt::from(v)))
    }

    /// An integer constant from a [`BigInt`].
    pub fn int_big(v: BigInt) -> Term {
        Term::new(TermKind::IntConst(v))
    }

    /// A real constant from a [`BigRational`].
    pub fn real(v: BigRational) -> Term {
        Term::new(TermKind::RealConst(v))
    }

    /// A real constant from an `i64` numerator/denominator pair.
    pub fn real_frac(num: i64, den: i64) -> Term {
        Term::new(TermKind::RealConst(BigRational::new(num.into(), den.into())))
    }

    /// A string literal.
    pub fn str_lit(s: impl Into<String>) -> Term {
        Term::new(TermKind::StringConst(s.into()))
    }

    /// A variable occurrence.
    pub fn var(name: impl Into<Symbol>) -> Term {
        Term::new(TermKind::Var(name.into()))
    }

    // -- applications ----------------------------------------------------------

    /// Applies `op` to `args`.
    pub fn app(op: Op, args: Vec<Term>) -> Term {
        Term::new(TermKind::App(op, args))
    }

    /// Boolean negation.
    pub fn not(t: Term) -> Term {
        Term::app(Op::Not, vec![t])
    }

    /// N-ary conjunction; returns `true` for zero and the sole element for
    /// one argument.
    pub fn and(mut args: Vec<Term>) -> Term {
        match args.len() {
            0 => Term::tru(),
            1 => args.pop().expect("len checked"),
            _ => Term::app(Op::And, args),
        }
    }

    /// N-ary disjunction; returns `false` for zero and the sole element for
    /// one argument.
    pub fn or(mut args: Vec<Term>) -> Term {
        match args.len() {
            0 => Term::fals(),
            1 => args.pop().expect("len checked"),
            _ => Term::app(Op::Or, args),
        }
    }

    /// Implication.
    pub fn implies(a: Term, b: Term) -> Term {
        Term::app(Op::Implies, vec![a, b])
    }

    /// Binary equality.
    pub fn eq(a: Term, b: Term) -> Term {
        Term::app(Op::Eq, vec![a, b])
    }

    /// Binary distinctness.
    pub fn distinct(a: Term, b: Term) -> Term {
        Term::app(Op::Distinct, vec![a, b])
    }

    /// If-then-else.
    pub fn ite(c: Term, t: Term, e: Term) -> Term {
        Term::app(Op::Ite, vec![c, t, e])
    }

    /// N-ary addition.
    pub fn add(args: Vec<Term>) -> Term {
        Term::app(Op::Add, args)
    }

    /// Binary subtraction.
    pub fn sub(a: Term, b: Term) -> Term {
        Term::app(Op::Sub, vec![a, b])
    }

    /// Unary negation. Numeric literals fold (`(- 1)` and the literal `-1`
    /// are the same term, matching the parser).
    pub fn neg(t: Term) -> Term {
        match t.kind() {
            TermKind::IntConst(v) => Term::int_big(-v.clone()),
            TermKind::RealConst(v) => Term::real(-v.clone()),
            _ => Term::app(Op::Neg, vec![t]),
        }
    }

    /// N-ary multiplication.
    pub fn mul(args: Vec<Term>) -> Term {
        Term::app(Op::Mul, args)
    }

    /// Real division. Constant operands with a non-zero divisor fold to a
    /// real literal, mirroring the parser (division by zero never folds —
    /// it is underspecified in SMT-LIB).
    pub fn real_div(a: Term, b: Term) -> Term {
        let rat = |t: &Term| match t.kind() {
            TermKind::RealConst(v) => Some(v.clone()),
            TermKind::IntConst(v) => Some(BigRational::from_int(v.clone())),
            _ => None,
        };
        if let (Some(x), Some(y)) = (rat(&a), rat(&b)) {
            if !y.is_zero() {
                return Term::real(&x / &y);
            }
        }
        Term::app(Op::RealDiv, vec![a, b])
    }

    /// Integer Euclidean division.
    pub fn int_div(a: Term, b: Term) -> Term {
        Term::app(Op::IntDiv, vec![a, b])
    }

    /// Integer Euclidean remainder.
    pub fn imod(a: Term, b: Term) -> Term {
        Term::app(Op::Mod, vec![a, b])
    }

    /// `<=`.
    pub fn le(a: Term, b: Term) -> Term {
        Term::app(Op::Le, vec![a, b])
    }

    /// `<`.
    pub fn lt(a: Term, b: Term) -> Term {
        Term::app(Op::Lt, vec![a, b])
    }

    /// `>=`.
    pub fn ge(a: Term, b: Term) -> Term {
        Term::app(Op::Ge, vec![a, b])
    }

    /// `>`.
    pub fn gt(a: Term, b: Term) -> Term {
        Term::app(Op::Gt, vec![a, b])
    }

    /// N-ary string concatenation.
    pub fn str_concat(args: Vec<Term>) -> Term {
        Term::app(Op::StrConcat, args)
    }

    /// String length.
    pub fn str_len(s: Term) -> Term {
        Term::app(Op::StrLen, vec![s])
    }

    /// Substring `(str.substr s off len)`.
    pub fn str_substr(s: Term, off: Term, len: Term) -> Term {
        Term::app(Op::StrSubstr, vec![s, off, len])
    }

    /// Replace first occurrence `(str.replace s t r)`.
    pub fn str_replace(s: Term, t: Term, r: Term) -> Term {
        Term::app(Op::StrReplace, vec![s, t, r])
    }

    /// Quantified formula. Returns `body` unchanged when `bindings` is empty.
    pub fn quant(q: Quantifier, bindings: Vec<(Symbol, Sort)>, body: Term) -> Term {
        if bindings.is_empty() {
            body
        } else {
            Term::new(TermKind::Quant(q, bindings, body))
        }
    }

    /// `forall` binder.
    pub fn forall(bindings: Vec<(Symbol, Sort)>, body: Term) -> Term {
        Term::quant(Quantifier::Forall, bindings, body)
    }

    /// `exists` binder.
    pub fn exists(bindings: Vec<(Symbol, Sort)>, body: Term) -> Term {
        Term::quant(Quantifier::Exists, bindings, body)
    }

    /// `let` binder. Returns `body` unchanged when `bindings` is empty.
    pub fn let_in(bindings: Vec<(Symbol, Term)>, body: Term) -> Term {
        if bindings.is_empty() {
            body
        } else {
            Term::new(TermKind::Let(bindings, body))
        }
    }

    // -- traversal -------------------------------------------------------------

    /// Immediate subterms (excluding binder annotations).
    pub fn children(&self) -> Vec<Term> {
        match self.kind() {
            TermKind::App(_, args) => args.clone(),
            TermKind::Quant(_, _, body) => vec![body.clone()],
            TermKind::Let(bindings, body) => {
                let mut v: Vec<Term> = bindings.iter().map(|(_, t)| t.clone()).collect();
                v.push(body.clone());
                v
            }
            _ => Vec::new(),
        }
    }

    /// Total number of nodes in the term tree.
    pub fn size(&self) -> usize {
        1 + self.children().iter().map(Term::size).sum::<usize>()
    }

    /// Depth of the term tree (a leaf has depth 1).
    pub fn depth(&self) -> usize {
        1 + self.children().iter().map(Term::depth).max().unwrap_or(0)
    }

    /// Free variables of the term, respecting `let`/quantifier binding.
    pub fn free_vars(&self) -> BTreeSet<Symbol> {
        let mut out = BTreeSet::new();
        self.collect_free_vars(&mut Vec::new(), &mut out);
        out
    }

    fn collect_free_vars(&self, bound: &mut Vec<Symbol>, out: &mut BTreeSet<Symbol>) {
        match self.kind() {
            TermKind::Var(name) => {
                if !bound.contains(name) {
                    out.insert(name.clone());
                }
            }
            TermKind::App(_, args) => {
                for a in args {
                    a.collect_free_vars(bound, out);
                }
            }
            TermKind::Quant(_, bindings, body) => {
                let n = bound.len();
                bound.extend(bindings.iter().map(|(s, _)| s.clone()));
                body.collect_free_vars(bound, out);
                bound.truncate(n);
            }
            TermKind::Let(bindings, body) => {
                for (_, t) in bindings {
                    t.collect_free_vars(bound, out);
                }
                let n = bound.len();
                bound.extend(bindings.iter().map(|(s, _)| s.clone()));
                body.collect_free_vars(bound, out);
                bound.truncate(n);
            }
            _ => {}
        }
    }

    /// Counts free occurrences of `var` (occurrences under a binder that
    /// shadows `var` are not counted).
    pub fn count_free_occurrences(&self, var: &Symbol) -> usize {
        match self.kind() {
            TermKind::Var(name) => usize::from(name == var),
            TermKind::App(_, args) => args.iter().map(|a| a.count_free_occurrences(var)).sum(),
            TermKind::Quant(_, bindings, body) => {
                if bindings.iter().any(|(s, _)| s == var) {
                    0
                } else {
                    body.count_free_occurrences(var)
                }
            }
            TermKind::Let(bindings, body) => {
                let in_bindings: usize =
                    bindings.iter().map(|(_, t)| t.count_free_occurrences(var)).sum();
                let shadowed = bindings.iter().any(|(s, _)| s == var);
                in_bindings + if shadowed { 0 } else { body.count_free_occurrences(var) }
            }
            _ => 0,
        }
    }

    /// Returns `true` if any subterm satisfies `pred`.
    pub fn any_subterm(&self, pred: &mut impl FnMut(&Term) -> bool) -> bool {
        if pred(self) {
            return true;
        }
        match self.kind() {
            TermKind::App(_, args) => args.iter().any(|a| a.any_subterm(pred)),
            TermKind::Quant(_, _, body) => body.any_subterm(pred),
            TermKind::Let(bindings, body) => {
                bindings.iter().any(|(_, t)| t.any_subterm(pred)) || body.any_subterm(pred)
            }
            _ => false,
        }
    }

    /// Counts subterms (including `self`) satisfying `pred`.
    pub fn count_subterms(&self, pred: &mut impl FnMut(&Term) -> bool) -> usize {
        let mut n = usize::from(pred(self));
        match self.kind() {
            TermKind::App(_, args) => {
                for a in args {
                    n += a.count_subterms(pred);
                }
            }
            TermKind::Quant(_, _, body) => n += body.count_subterms(pred),
            TermKind::Let(bindings, body) => {
                for (_, t) in bindings {
                    n += t.count_subterms(pred);
                }
                n += body.count_subterms(pred);
            }
            _ => {}
        }
        n
    }

    /// `true` iff the term contains a quantifier.
    pub fn has_quantifier(&self) -> bool {
        self.any_subterm(&mut |t| matches!(t.kind(), TermKind::Quant(..)))
    }
}

impl fmt::Debug for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Term({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_build_expected_kinds() {
        assert!(matches!(Term::tru().kind(), TermKind::BoolConst(true)));
        assert!(matches!(Term::int(3).kind(), TermKind::IntConst(_)));
        assert!(matches!(Term::var("x").kind(), TermKind::Var(_)));
    }

    #[test]
    fn and_or_degenerate_cases() {
        assert_eq!(Term::and(vec![]), Term::tru());
        assert_eq!(Term::or(vec![]), Term::fals());
        let x = Term::var("p");
        assert_eq!(Term::and(vec![x.clone()]), x.clone());
        assert_eq!(Term::or(vec![x.clone()]), x);
    }

    #[test]
    fn free_vars_respect_quantifiers() {
        // (forall ((x Int)) (> x y))
        let body = Term::gt(Term::var("x"), Term::var("y"));
        let q = Term::forall(vec![(Symbol::new("x"), Sort::Int)], body);
        let fv = q.free_vars();
        assert!(fv.contains(&Symbol::new("y")));
        assert!(!fv.contains(&Symbol::new("x")));
    }

    #[test]
    fn free_vars_respect_let() {
        // (let ((x y)) (+ x z)): free = {y, z}
        let t = Term::let_in(
            vec![(Symbol::new("x"), Term::var("y"))],
            Term::add(vec![Term::var("x"), Term::var("z")]),
        );
        let fv = t.free_vars();
        assert_eq!(
            fv.into_iter().map(|s| s.as_str().to_owned()).collect::<Vec<_>>(),
            vec!["y", "z"]
        );
    }

    #[test]
    fn occurrence_counting() {
        let x = Term::var("x");
        let t = Term::add(vec![x.clone(), Term::mul(vec![x.clone(), x.clone()]), Term::var("y")]);
        assert_eq!(t.count_free_occurrences(&Symbol::new("x")), 3);
        assert_eq!(t.count_free_occurrences(&Symbol::new("y")), 1);
        assert_eq!(t.count_free_occurrences(&Symbol::new("z")), 0);
    }

    #[test]
    fn size_and_depth() {
        let t = Term::gt(Term::add(vec![Term::var("x"), Term::int(1)]), Term::int(0));
        assert_eq!(t.size(), 5);
        assert_eq!(t.depth(), 3);
    }

    #[test]
    fn shadowed_occurrences_not_counted() {
        let x = Symbol::new("x");
        let inner =
            Term::exists(vec![(x.clone(), Sort::Int)], Term::gt(Term::var("x"), Term::int(0)));
        let t = Term::and(vec![Term::gt(Term::var("x"), Term::int(1)), inner]);
        assert_eq!(t.count_free_occurrences(&x), 1);
    }

    #[test]
    fn arity_checks() {
        assert!(Op::Ite.arity().admits(3));
        assert!(!Op::Ite.arity().admits(2));
        assert!(Op::And.arity().admits(5));
        assert!(!Op::And.arity().admits(1));
        assert!(Op::ReNone.arity().admits(0));
    }

    #[test]
    fn has_quantifier() {
        let plain = Term::gt(Term::var("x"), Term::int(0));
        assert!(!plain.has_quantifier());
        let q = Term::forall(vec![(Symbol::new("x"), Sort::Int)], plain);
        assert!(q.has_quantifier());
    }
}
