//! Term evaluation under a model.
//!
//! The evaluator implements the SMT-LIB 2.6 semantics of the Bool, Int,
//! Real, String, and RegLan theories. It is the ground truth the rest of the
//! workspace trusts: seed generators prove their formulas satisfiable by
//! exhibiting a model and evaluating; the fusion oracle checks
//! Proposition 1's model construction with it; the solver validates its own
//! models with it.
//!
//! Division by zero is *underspecified* in SMT-LIB (any model may interpret
//! it as an arbitrary function). The evaluator therefore takes a
//! [`ZeroDivPolicy`]: strict checking treats it as an error, solver-style
//! evaluation maps it to a fixed default.

use crate::regex::Regex;
use crate::sort::Sort;
use crate::symbol::Symbol;
use crate::term::{Op, Term, TermKind};
use std::collections::BTreeMap;
use std::fmt;
use std::rc::Rc;
use yinyang_arith::{BigInt, BigRational};

/// A first-order value of one of the supported sorts.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    /// Boolean.
    Bool(bool),
    /// Integer.
    Int(BigInt),
    /// Real.
    Real(BigRational),
    /// String.
    Str(String),
}

impl Value {
    /// The sort of the value.
    pub fn sort(&self) -> Sort {
        match self {
            Value::Bool(_) => Sort::Bool,
            Value::Int(_) => Sort::Int,
            Value::Real(_) => Sort::Real,
            Value::Str(_) => Sort::String,
        }
    }

    /// Extracts a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Numeric view: `Int` and `Real` both convert to a rational.
    pub fn as_rational(&self) -> Option<BigRational> {
        match self {
            Value::Int(v) => Some(BigRational::from_int(v.clone())),
            Value::Real(v) => Some(v.clone()),
            _ => None,
        }
    }

    /// Extracts a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Renders the value as an SMT-LIB term.
    pub fn to_term(&self) -> Term {
        match self {
            Value::Bool(b) => Term::bool(*b),
            Value::Int(v) => Term::int_big(v.clone()),
            Value::Real(v) => Term::real(v.clone()),
            Value::Str(s) => Term::str_lit(s.clone()),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_term())
    }
}

/// A model: an assignment of values to free variables.
///
/// # Examples
///
/// ```
/// use yinyang_smtlib::{parse_term, Model, Value};
///
/// let mut m = Model::new();
/// m.set("x", Value::Int(3.into()));
/// let t = parse_term("(> (* x x) 8)")?;
/// assert_eq!(m.eval(&t)?, Value::Bool(true));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Model {
    assignments: BTreeMap<Symbol, Value>,
}

impl Model {
    /// An empty model.
    pub fn new() -> Self {
        Model::default()
    }

    /// Assigns `value` to `var`, returning any previous value.
    pub fn set(&mut self, var: impl Into<Symbol>, value: Value) -> Option<Value> {
        self.assignments.insert(var.into(), value)
    }

    /// Looks up a variable.
    pub fn get(&self, var: &Symbol) -> Option<&Value> {
        self.assignments.get(var)
    }

    /// Iterates over `(variable, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&Symbol, &Value)> {
        self.assignments.iter()
    }

    /// Number of assigned variables.
    pub fn len(&self) -> usize {
        self.assignments.len()
    }

    /// Whether the model assigns no variables.
    pub fn is_empty(&self) -> bool {
        self.assignments.is_empty()
    }

    /// Merges `other` into `self` (right-biased). Used by Proposition 1's
    /// `M = M1 ∪ M2 ∪ {z ↦ f(M1(x), M2(y))}` construction.
    pub fn extend(&mut self, other: &Model) {
        for (k, v) in other.iter() {
            self.assignments.insert(k.clone(), v.clone());
        }
    }

    /// Evaluates `term` under this model with the strict
    /// ([`ZeroDivPolicy::Error`]) division policy.
    ///
    /// # Errors
    ///
    /// See [`EvalError`].
    pub fn eval(&self, term: &Term) -> Result<Value, EvalError> {
        Evaluator { policy: ZeroDivPolicy::Error }.eval(term, &mut Scope::new(self))
    }

    /// Evaluates with an explicit division-by-zero policy.
    ///
    /// # Errors
    ///
    /// See [`EvalError`].
    pub fn eval_with(&self, term: &Term, policy: ZeroDivPolicy) -> Result<Value, EvalError> {
        Evaluator { policy }.eval(term, &mut Scope::new(self))
    }

    /// Convenience: is `term` true under this model (strict policy)?
    ///
    /// # Errors
    ///
    /// Fails if evaluation fails or the term is not boolean.
    pub fn satisfies(&self, term: &Term) -> Result<bool, EvalError> {
        match self.eval(term)? {
            Value::Bool(b) => Ok(b),
            v => Err(EvalError::SortMismatch(format!("expected Bool, got {}", v.sort()))),
        }
    }

    /// Renders the model SMT-LIB-style as a sequence of `define-fun`s.
    pub fn to_smtlib(&self) -> String {
        let mut out = String::from("(\n");
        for (k, v) in self.iter() {
            out.push_str(&format!("  (define-fun {k} () {} {v})\n", v.sort()));
        }
        out.push(')');
        out
    }
}

impl FromIterator<(Symbol, Value)> for Model {
    fn from_iter<T: IntoIterator<Item = (Symbol, Value)>>(iter: T) -> Self {
        Model { assignments: iter.into_iter().collect() }
    }
}

/// How to evaluate `(/ t 0)`, `(div t 0)`, and `(mod t 0)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ZeroDivPolicy {
    /// Fail with [`EvalError::DivisionByZero`] — strict checking.
    Error,
    /// Every division by zero evaluates to zero (one fixed interpretation,
    /// consistent across occurrences — a legal SMT-LIB model choice).
    Zero,
}

/// Evaluation error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// A free variable had no value in the model.
    UnboundVar(Symbol),
    /// Division by zero under [`ZeroDivPolicy::Error`].
    DivisionByZero(String),
    /// Quantified subformula — the evaluator does not decide quantifiers.
    Quantifier,
    /// Ill-sorted application.
    SortMismatch(String),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UnboundVar(v) => write!(f, "unbound variable {v}"),
            EvalError::DivisionByZero(t) => write!(f, "division by zero in {t}"),
            EvalError::Quantifier => f.write_str("cannot evaluate quantified formula"),
            EvalError::SortMismatch(m) => write!(f, "sort mismatch: {m}"),
        }
    }
}

impl std::error::Error for EvalError {}

/// Lexical scope: the model plus `let`-bound values.
struct Scope<'a> {
    model: &'a Model,
    lets: Vec<(Symbol, Value)>,
}

impl<'a> Scope<'a> {
    fn new(model: &'a Model) -> Self {
        Scope { model, lets: Vec::new() }
    }

    fn lookup(&self, var: &Symbol) -> Option<Value> {
        self.lets
            .iter()
            .rev()
            .find(|(s, _)| s == var)
            .map(|(_, v)| v.clone())
            .or_else(|| self.model.get(var).cloned())
    }
}

struct Evaluator {
    policy: ZeroDivPolicy,
}

impl Evaluator {
    fn eval(&self, term: &Term, scope: &mut Scope<'_>) -> Result<Value, EvalError> {
        match term.kind() {
            TermKind::BoolConst(b) => Ok(Value::Bool(*b)),
            TermKind::IntConst(v) => Ok(Value::Int(v.clone())),
            TermKind::RealConst(v) => Ok(Value::Real(v.clone())),
            TermKind::StringConst(s) => Ok(Value::Str(s.clone())),
            TermKind::Var(name) => {
                scope.lookup(name).ok_or_else(|| EvalError::UnboundVar(name.clone()))
            }
            TermKind::Quant(..) => Err(EvalError::Quantifier),
            TermKind::Let(bindings, body) => {
                let mut vals = Vec::with_capacity(bindings.len());
                for (name, t) in bindings {
                    // SMT-LIB `let` is parallel: evaluate all values in the
                    // outer scope first.
                    vals.push((name.clone(), self.eval(t, scope)?));
                }
                let n = scope.lets.len();
                scope.lets.extend(vals);
                let out = self.eval(body, scope);
                scope.lets.truncate(n);
                out
            }
            TermKind::App(op, args) => self.eval_app(term, *op, args, scope),
        }
    }

    fn eval_app(
        &self,
        term: &Term,
        op: Op,
        args: &[Term],
        scope: &mut Scope<'_>,
    ) -> Result<Value, EvalError> {
        // Short-circuiting connectives first.
        match op {
            Op::And => {
                for a in args {
                    if !self.eval_bool(a, scope)? {
                        return Ok(Value::Bool(false));
                    }
                }
                return Ok(Value::Bool(true));
            }
            Op::Or => {
                for a in args {
                    if self.eval_bool(a, scope)? {
                        return Ok(Value::Bool(true));
                    }
                }
                return Ok(Value::Bool(false));
            }
            Op::Implies => {
                // Right-associative: (=> a b c) = a => (b => c).
                let mut result = self.eval_bool(args.last().expect("arity"), scope)?;
                for a in args[..args.len() - 1].iter().rev() {
                    result = !self.eval_bool(a, scope)? || result;
                }
                return Ok(Value::Bool(result));
            }
            Op::Ite => {
                let c = self.eval_bool(&args[0], scope)?;
                return self.eval(&args[if c { 1 } else { 2 }], scope);
            }
            Op::StrInRe => {
                // The second argument is RegLan syntax, not a first-order
                // value — interpret it as a semantic regex instead.
                let s = self.eval(&args[0], scope)?;
                let re = regex_of_term(&args[1], scope, self)?;
                return Ok(Value::Bool(re.matches(str_of(&s)?)));
            }
            _ => {}
        }

        let vals: Vec<Value> =
            args.iter().map(|a| self.eval(a, scope)).collect::<Result<_, _>>()?;

        match op {
            Op::Not => Ok(Value::Bool(!bool_of(&vals[0])?)),
            Op::Xor => {
                let mut acc = false;
                for v in &vals {
                    acc ^= bool_of(v)?;
                }
                Ok(Value::Bool(acc))
            }
            Op::Eq => {
                for w in vals.windows(2) {
                    if !values_equal(&w[0], &w[1])? {
                        return Ok(Value::Bool(false));
                    }
                }
                Ok(Value::Bool(true))
            }
            Op::Distinct => {
                for i in 0..vals.len() {
                    for j in i + 1..vals.len() {
                        if values_equal(&vals[i], &vals[j])? {
                            return Ok(Value::Bool(false));
                        }
                    }
                }
                Ok(Value::Bool(true))
            }
            Op::Neg => numeric_unop(&vals[0], |v| -v),
            Op::Abs => match &vals[0] {
                Value::Int(v) => Ok(Value::Int(v.abs())),
                Value::Real(v) => Ok(Value::Real(v.abs())),
                v => Err(sort_err("abs", v)),
            },
            Op::Add => numeric_fold(&vals, |a, b| a + b),
            Op::Sub => numeric_fold(&vals, |a, b| a - b),
            Op::Mul => numeric_fold(&vals, |a, b| a * b),
            Op::RealDiv => {
                let mut acc = rat_of(&vals[0])?;
                for v in &vals[1..] {
                    let d = rat_of(v)?;
                    if d.is_zero() {
                        match self.policy {
                            ZeroDivPolicy::Error => {
                                return Err(EvalError::DivisionByZero(term.to_string()))
                            }
                            ZeroDivPolicy::Zero => acc = BigRational::zero(),
                        }
                    } else {
                        acc = &acc / &d;
                    }
                }
                Ok(Value::Real(acc))
            }
            Op::IntDiv | Op::Mod => {
                let mut acc = int_of(&vals[0])?;
                for v in &vals[1..] {
                    let d = int_of(v)?;
                    if d.is_zero() {
                        match self.policy {
                            ZeroDivPolicy::Error => {
                                return Err(EvalError::DivisionByZero(term.to_string()))
                            }
                            ZeroDivPolicy::Zero => acc = BigInt::zero(),
                        }
                    } else if op == Op::IntDiv {
                        acc = acc.div_euclid_big(&d);
                    } else {
                        acc = acc.rem_euclid_big(&d);
                    }
                }
                Ok(Value::Int(acc))
            }
            Op::Le => compare_chain(&vals, |o| o != std::cmp::Ordering::Greater),
            Op::Lt => compare_chain(&vals, |o| o == std::cmp::Ordering::Less),
            Op::Ge => compare_chain(&vals, |o| o != std::cmp::Ordering::Less),
            Op::Gt => compare_chain(&vals, |o| o == std::cmp::Ordering::Greater),
            Op::ToReal => Ok(Value::Real(rat_of(&vals[0])?)),
            Op::ToInt => Ok(Value::Int(rat_of(&vals[0])?.floor())),
            Op::IsInt => Ok(Value::Bool(rat_of(&vals[0])?.is_integer())),
            Op::StrConcat => {
                let mut out = String::new();
                for v in &vals {
                    out.push_str(str_of(v)?);
                }
                Ok(Value::Str(out))
            }
            Op::StrLen => Ok(Value::Int(BigInt::from(str_of(&vals[0])?.chars().count() as i64))),
            Op::StrAt => {
                let s = str_of(&vals[0])?;
                let i = int_of(&vals[1])?;
                let out = match i.to_i64() {
                    Some(i) if i >= 0 => {
                        s.chars().nth(i as usize).map(String::from).unwrap_or_default()
                    }
                    _ => String::new(),
                };
                Ok(Value::Str(out))
            }
            Op::StrSubstr => {
                let s: Vec<char> = str_of(&vals[0])?.chars().collect();
                let off = int_of(&vals[1])?;
                let len = int_of(&vals[2])?;
                let out = match (off.to_i64(), len.to_i64()) {
                    (Some(m), Some(n)) if m >= 0 && (m as usize) < s.len() && n >= 0 => {
                        let take = (n as usize).min(s.len() - m as usize);
                        s[m as usize..m as usize + take].iter().collect()
                    }
                    _ => String::new(),
                };
                Ok(Value::Str(out))
            }
            Op::StrPrefixOf => Ok(Value::Bool(str_of(&vals[1])?.starts_with(str_of(&vals[0])?))),
            Op::StrSuffixOf => Ok(Value::Bool(str_of(&vals[1])?.ends_with(str_of(&vals[0])?))),
            Op::StrContains => Ok(Value::Bool(str_of(&vals[0])?.contains(str_of(&vals[1])?))),
            Op::StrIndexOf => {
                let s: Vec<char> = str_of(&vals[0])?.chars().collect();
                let t: Vec<char> = str_of(&vals[1])?.chars().collect();
                let i = int_of(&vals[2])?;
                let out = match i.to_i64() {
                    Some(i) if i >= 0 && i as usize <= s.len() => {
                        find_from(&s, &t, i as usize).map(|j| j as i64).unwrap_or(-1)
                    }
                    _ => -1,
                };
                Ok(Value::Int(BigInt::from(out)))
            }
            Op::StrReplace => {
                let s = str_of(&vals[0])?;
                let t = str_of(&vals[1])?;
                let r = str_of(&vals[2])?;
                // SMT-LIB 2.6: if t is empty, result is r ++ s.
                let out = if t.is_empty() { format!("{r}{s}") } else { s.replacen(t, r, 1) };
                Ok(Value::Str(out))
            }
            Op::StrReplaceAll => {
                let s = str_of(&vals[0])?;
                let t = str_of(&vals[1])?;
                let r = str_of(&vals[2])?;
                // SMT-LIB 2.6: if t is empty, result is s.
                let out = if t.is_empty() { s.to_owned() } else { s.replace(t, r) };
                Ok(Value::Str(out))
            }
            Op::StrToInt => {
                let s = str_of(&vals[0])?;
                let out = if !s.is_empty() && s.bytes().all(|b| b.is_ascii_digit()) {
                    s.parse::<BigInt>().expect("digit string parses")
                } else {
                    BigInt::from(-1)
                };
                Ok(Value::Int(out))
            }
            Op::StrFromInt => {
                let i = int_of(&vals[0])?;
                let out = if i.is_negative() { String::new() } else { i.to_string() };
                Ok(Value::Str(out))
            }
            Op::StrToRe
            | Op::ReNone
            | Op::ReAll
            | Op::ReAllChar
            | Op::ReConcat
            | Op::ReUnion
            | Op::ReInter
            | Op::ReStar
            | Op::RePlus
            | Op::ReOpt
            | Op::ReRange => {
                Err(EvalError::SortMismatch("RegLan term evaluated outside str.in_re".to_owned()))
            }
            Op::And | Op::Or | Op::Implies | Op::Ite | Op::StrInRe => {
                unreachable!("handled above")
            }
        }
    }

    fn eval_bool(&self, term: &Term, scope: &mut Scope<'_>) -> Result<bool, EvalError> {
        bool_of(&self.eval(term, scope)?)
    }
}

fn find_from(s: &[char], t: &[char], from: usize) -> Option<usize> {
    if t.is_empty() {
        return Some(from);
    }
    let last = s.len().checked_sub(t.len())?;
    (from..=last).find(|&j| s[j..j + t.len()] == *t)
}

fn bool_of(v: &Value) -> Result<bool, EvalError> {
    v.as_bool().ok_or_else(|| sort_err_plain("Bool", v))
}

fn int_of(v: &Value) -> Result<BigInt, EvalError> {
    match v {
        Value::Int(i) => Ok(i.clone()),
        _ => Err(sort_err_plain("Int", v)),
    }
}

fn rat_of(v: &Value) -> Result<BigRational, EvalError> {
    v.as_rational().ok_or_else(|| sort_err_plain("Real", v))
}

fn str_of(v: &Value) -> Result<&str, EvalError> {
    v.as_str().ok_or_else(|| sort_err_plain("String", v))
}

fn sort_err(op: &str, v: &Value) -> EvalError {
    EvalError::SortMismatch(format!("{op} applied to {}", v.sort()))
}

fn sort_err_plain(expected: &str, v: &Value) -> EvalError {
    EvalError::SortMismatch(format!("expected {expected}, got {}", v.sort()))
}

fn values_equal(a: &Value, b: &Value) -> Result<bool, EvalError> {
    match (a, b) {
        (Value::Bool(x), Value::Bool(y)) => Ok(x == y),
        (Value::Str(x), Value::Str(y)) => Ok(x == y),
        (Value::Int(x), Value::Int(y)) => Ok(x == y),
        (Value::Real(_), _) | (_, Value::Real(_)) | (Value::Int(_), _) | (_, Value::Int(_)) => {
            match (a.as_rational(), b.as_rational()) {
                (Some(x), Some(y)) => Ok(x == y),
                _ => Err(EvalError::SortMismatch(format!(
                    "= applied to {} and {}",
                    a.sort(),
                    b.sort()
                ))),
            }
        }
        _ => Err(EvalError::SortMismatch(format!("= applied to {} and {}", a.sort(), b.sort()))),
    }
}

fn numeric_unop(v: &Value, f: impl Fn(&BigRational) -> BigRational) -> Result<Value, EvalError> {
    match v {
        Value::Int(i) => {
            let r = f(&BigRational::from_int(i.clone()));
            Ok(Value::Int(r.floor()))
        }
        Value::Real(r) => Ok(Value::Real(f(r))),
        v => Err(sort_err_plain("numeric", v)),
    }
}

/// Folds a chain with Int result unless any operand is Real.
fn numeric_fold(
    vals: &[Value],
    f: impl Fn(&BigRational, &BigRational) -> BigRational,
) -> Result<Value, EvalError> {
    let any_real = vals.iter().any(|v| matches!(v, Value::Real(_)));
    let mut acc = rat_of(&vals[0])?;
    for v in &vals[1..] {
        acc = f(&acc, &rat_of(v)?);
    }
    if any_real {
        Ok(Value::Real(acc))
    } else {
        debug_assert!(acc.is_integer(), "Int arithmetic must stay integral");
        Ok(Value::Int(acc.floor()))
    }
}

fn compare_chain(
    vals: &[Value],
    accept: impl Fn(std::cmp::Ordering) -> bool,
) -> Result<Value, EvalError> {
    for w in vals.windows(2) {
        let a = rat_of(&w[0])?;
        let b = rat_of(&w[1])?;
        if !accept(a.cmp(&b)) {
            return Ok(Value::Bool(false));
        }
    }
    Ok(Value::Bool(true))
}

/// Converts a `RegLan`-sorted term to a semantic [`Regex`], evaluating any
/// embedded string terms (e.g. `(str.to_re x)`).
fn regex_of_term(term: &Term, scope: &mut Scope<'_>, ev: &Evaluator) -> Result<Regex, EvalError> {
    match term.kind() {
        TermKind::App(op, args) => {
            let sub = |a: &Term, scope: &mut Scope<'_>| -> Result<Rc<Regex>, EvalError> {
                Ok(Rc::new(regex_of_term(a, scope, ev)?))
            };
            match op {
                Op::ReNone => Ok(Regex::None),
                Op::ReAll => Ok(Regex::All),
                Op::ReAllChar => Ok(Regex::AllChar),
                Op::StrToRe => {
                    let v = ev.eval(&args[0], scope)?;
                    Ok(Regex::Lit(str_of(&v)?.to_owned()))
                }
                Op::ReRange => {
                    let lo = ev.eval(&args[0], scope)?;
                    let hi = ev.eval(&args[1], scope)?;
                    let (lo, hi) = (str_of(&lo)?.to_owned(), str_of(&hi)?.to_owned());
                    // Per SMT-LIB: both bounds must be single characters,
                    // otherwise the language is empty.
                    match (char_of(&lo), char_of(&hi)) {
                        (Some(l), Some(h)) => Ok(Regex::Range(l, h)),
                        _ => Ok(Regex::None),
                    }
                }
                Op::ReConcat => {
                    let parts =
                        args.iter().map(|a| sub(a, scope)).collect::<Result<Vec<_>, _>>()?;
                    Ok(Regex::Concat(parts))
                }
                Op::ReUnion => {
                    let parts =
                        args.iter().map(|a| sub(a, scope)).collect::<Result<Vec<_>, _>>()?;
                    Ok(Regex::Union(parts))
                }
                Op::ReInter => {
                    let parts =
                        args.iter().map(|a| sub(a, scope)).collect::<Result<Vec<_>, _>>()?;
                    Ok(Regex::Inter(parts))
                }
                Op::ReStar => Ok(Regex::Star(sub(&args[0], scope)?)),
                Op::RePlus => Ok(Regex::Plus(sub(&args[0], scope)?)),
                Op::ReOpt => Ok(Regex::Opt(sub(&args[0], scope)?)),
                other => Err(EvalError::SortMismatch(format!(
                    "expected RegLan term, got application of {other}"
                ))),
            }
        }
        other => Err(EvalError::SortMismatch(format!("expected RegLan term, got {other:?}"))),
    }
}

/// Builds a semantic regex from a *closed* `RegLan` term (no free string
/// variables under `str.to_re`).
///
/// # Errors
///
/// Fails when the term is not a `RegLan` term or contains free variables.
pub fn regex_of_closed_term(term: &Term) -> Result<Regex, EvalError> {
    let empty = Model::new();
    let mut scope = Scope::new(&empty);
    regex_of_term(term, &mut scope, &Evaluator { policy: ZeroDivPolicy::Error })
}

fn char_of(s: &str) -> Option<char> {
    let mut it = s.chars();
    match (it.next(), it.next()) {
        (Some(c), None) => Some(c),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_term;

    fn model(pairs: &[(&str, Value)]) -> Model {
        pairs.iter().map(|(k, v)| (Symbol::new(*k), v.clone())).collect()
    }

    fn ival(v: i64) -> Value {
        Value::Int(BigInt::from(v))
    }

    fn rval(n: i64, d: i64) -> Value {
        Value::Real(BigRational::new(n.into(), d.into()))
    }

    fn sval(s: &str) -> Value {
        Value::Str(s.to_owned())
    }

    fn eval(src: &str, m: &Model) -> Value {
        m.eval(&parse_term(src).unwrap()).unwrap()
    }

    #[test]
    fn arithmetic_basics() {
        let m = model(&[("x", ival(3)), ("y", ival(-2))]);
        assert_eq!(eval("(+ x y 1)", &m), ival(2));
        assert_eq!(eval("(* x y)", &m), ival(-6));
        assert_eq!(eval("(- x y)", &m), ival(5));
        assert_eq!(eval("(abs y)", &m), ival(2));
        assert_eq!(eval("(div x 2)", &m), ival(1));
        assert_eq!(eval("(mod y 3)", &m), ival(1));
        assert_eq!(eval("(div y 2)", &m), ival(-1));
    }

    #[test]
    fn euclidean_div_on_negatives() {
        // SMT-LIB: (div -7 2) = -4, (mod -7 2) = 1.
        let m = Model::new();
        assert_eq!(eval("(div (- 7) 2)", &m), ival(-4));
        assert_eq!(eval("(mod (- 7) 2)", &m), ival(1));
        assert_eq!(eval("(div 7 (- 2))", &m), ival(-3));
        assert_eq!(eval("(mod 7 (- 2))", &m), ival(1));
    }

    #[test]
    fn mixed_int_real_comparisons() {
        let m = model(&[("y", rval(1, 2))]);
        assert_eq!(eval("(> y 0)", &m), Value::Bool(true));
        assert_eq!(eval("(< y 1)", &m), Value::Bool(true));
        assert_eq!(eval("(= (+ y y) 1)", &m), Value::Bool(true));
    }

    #[test]
    fn chained_comparisons() {
        let m = Model::new();
        assert_eq!(eval("(< 1 2 3)", &m), Value::Bool(true));
        assert_eq!(eval("(< 1 3 2)", &m), Value::Bool(false));
        assert_eq!(eval("(<= 1 1 2)", &m), Value::Bool(true));
    }

    #[test]
    fn division_by_zero_policies() {
        let m = Model::new();
        let t = parse_term("(div 5 0)").unwrap();
        assert!(matches!(m.eval(&t), Err(EvalError::DivisionByZero(_))));
        assert_eq!(m.eval_with(&t, ZeroDivPolicy::Zero).unwrap(), ival(0));
        let t2 = parse_term("(/ 5.0 0.0)").unwrap();
        assert!(matches!(m.eval(&t2), Err(EvalError::DivisionByZero(_))));
        assert_eq!(m.eval_with(&t2, ZeroDivPolicy::Zero).unwrap(), rval(0, 1));
    }

    #[test]
    fn short_circuit_avoids_errors() {
        // `and` short-circuits before the division by zero.
        let m = Model::new();
        assert_eq!(eval("(and false (= (div 1 0) 0))", &m), Value::Bool(false));
        assert_eq!(eval("(or true (= (div 1 0) 0))", &m), Value::Bool(true));
        assert_eq!(eval("(ite true 1 (div 1 0))", &m), ival(1));
    }

    #[test]
    fn implies_right_associative() {
        let m = Model::new();
        assert_eq!(eval("(=> false true)", &m), Value::Bool(true));
        assert_eq!(eval("(=> true false)", &m), Value::Bool(false));
        // (=> a b c) == a => (b => c)
        assert_eq!(eval("(=> true false true)", &m), Value::Bool(true));
        assert_eq!(eval("(=> true true false)", &m), Value::Bool(false));
    }

    #[test]
    fn string_operations() {
        let m = model(&[("a", sval("foobar")), ("b", sval("foo")), ("c", sval("bar"))]);
        assert_eq!(eval("(str.++ b c)", &m), sval("foobar"));
        assert_eq!(eval("(str.len a)", &m), ival(6));
        assert_eq!(eval("(str.at a 0)", &m), sval("f"));
        assert_eq!(eval("(str.at a 10)", &m), sval(""));
        assert_eq!(eval("(str.at a (- 1))", &m), sval(""));
        assert_eq!(eval("(str.substr a 0 3)", &m), sval("foo"));
        assert_eq!(eval("(str.substr a 3 100)", &m), sval("bar"));
        assert_eq!(eval("(str.substr a 6 1)", &m), sval(""));
        assert_eq!(eval("(str.contains a b)", &m), Value::Bool(true));
        assert_eq!(eval("(str.prefixof b a)", &m), Value::Bool(true));
        assert_eq!(eval("(str.suffixof c a)", &m), Value::Bool(true));
        assert_eq!(eval("(str.indexof a c 0)", &m), ival(3));
        assert_eq!(eval("(str.indexof a \"zz\" 0)", &m), ival(-1));
        assert_eq!(eval("(str.replace a b \"\")", &m), sval("bar"));
        assert_eq!(eval("(str.replace a \"\" \"X\")", &m), sval("Xfoobar"));
        assert_eq!(eval("(str.replace_all \"aaa\" \"a\" \"b\")", &m), sval("bbb"));
        assert_eq!(eval("(str.replace_all \"aaa\" \"\" \"b\")", &m), sval("aaa"));
    }

    #[test]
    fn str_int_conversions() {
        let m = Model::new();
        assert_eq!(eval("(str.to_int \"42\")", &m), ival(42));
        assert_eq!(eval("(str.to_int \"0042\")", &m), ival(42));
        assert_eq!(eval("(str.to_int \"\")", &m), ival(-1));
        assert_eq!(eval("(str.to_int \"4a\")", &m), ival(-1));
        assert_eq!(eval("(str.to_int \"-4\")", &m), ival(-1));
        assert_eq!(eval("(str.from_int 42)", &m), sval("42"));
        assert_eq!(eval("(str.from_int (- 3))", &m), sval(""));
        assert_eq!(eval("(str.from_int 0)", &m), sval("0"));
    }

    #[test]
    fn regex_membership() {
        let m = model(&[("c", sval("aaaa")), ("d", sval("aaa"))]);
        assert_eq!(eval("(str.in_re c (re.* (str.to_re \"aa\")))", &m), Value::Bool(true));
        assert_eq!(eval("(str.in_re d (re.* (str.to_re \"aa\")))", &m), Value::Bool(false));
        assert_eq!(
            eval("(str.in_re \"b\" (re.union (str.to_re \"a\") (str.to_re \"b\")))", &m),
            Value::Bool(true)
        );
        assert_eq!(eval("(str.in_re \"x\" (re.range \"a\" \"c\"))", &m), Value::Bool(false));
    }

    #[test]
    fn regex_with_variable_operand() {
        // (str.to_re x) where x is a variable — evaluated from the model.
        let m = model(&[("x", sval("ab")), ("s", sval("abab"))]);
        assert_eq!(eval("(str.in_re s (re.* (str.to_re x)))", &m), Value::Bool(true));
    }

    #[test]
    fn let_is_parallel() {
        let m = model(&[("x", ival(1))]);
        // Parallel let: both bindings see the outer x.
        assert_eq!(eval("(let ((x 2) (y x)) (+ x y))", &m), ival(3));
    }

    #[test]
    fn quantifiers_are_rejected() {
        let m = Model::new();
        let t = parse_term("(forall ((x Int)) (> x 0))").unwrap();
        assert_eq!(m.eval(&t), Err(EvalError::Quantifier));
    }

    #[test]
    fn unbound_variable_is_reported() {
        let m = Model::new();
        let t = parse_term("(> q 0)").unwrap();
        assert_eq!(m.eval(&t), Err(EvalError::UnboundVar(Symbol::new("q"))));
    }

    #[test]
    fn satisfies_checks_paper_phi1() {
        // φ1 ≡ (x = −1) ∧ (w = (x = −1)) ∧ w from Section 2.1.
        let t = parse_term("(and (= x (- 1)) (= w (= x (- 1))) w)").unwrap();
        let m = model(&[("x", ival(-1)), ("w", Value::Bool(true))]);
        assert!(m.satisfies(&t).unwrap());
        let bad = model(&[("x", ival(0)), ("w", Value::Bool(true))]);
        assert!(!bad.satisfies(&t).unwrap());
    }

    #[test]
    fn to_real_to_int() {
        let m = Model::new();
        assert_eq!(eval("(to_real 3)", &m), rval(3, 1));
        assert_eq!(eval("(to_int 3.7)", &m), ival(3));
        assert_eq!(eval("(to_int (- 3.7))", &m), ival(-4));
        assert_eq!(eval("(is_int 4.0)", &m), Value::Bool(true));
        assert_eq!(eval("(is_int 4.5)", &m), Value::Bool(false));
    }

    #[test]
    fn model_display() {
        let m = model(&[("x", ival(-1)), ("s", sval("hi"))]);
        let text = m.to_smtlib();
        assert!(text.contains("(define-fun s () String \"hi\")"));
        assert!(text.contains("(define-fun x () Int (- 1))"));
    }
}
