//! SMT-LIB sorts for the theories YinYang targets.

use std::fmt;
use std::str::FromStr;

/// The sorts supported by this workspace: the paper targets the arithmetic
/// (`Int`, `Real`) and unicode-string (`String`, plus `RegLan` regular
/// languages) theories, with the `Bool` core.
///
/// # Examples
///
/// ```
/// use yinyang_smtlib::Sort;
///
/// assert_eq!("Int".parse::<Sort>().unwrap(), Sort::Int);
/// assert!(Sort::Real.is_arith());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Sort {
    /// Core booleans.
    Bool,
    /// Mathematical integers.
    Int,
    /// Mathematical reals.
    Real,
    /// Unicode strings.
    String,
    /// Regular languages over strings (the sort of regex terms).
    RegLan,
}

impl Sort {
    /// Returns `true` for the numeric sorts `Int` and `Real`.
    pub fn is_arith(self) -> bool {
        matches!(self, Sort::Int | Sort::Real)
    }

    /// Returns `true` for sorts whose variables can be fused by the Fig. 6
    /// fusion-function table (Int, Real, String).
    pub fn is_fusible(self) -> bool {
        matches!(self, Sort::Int | Sort::Real | Sort::String)
    }

    /// The SMT-LIB name of the sort.
    pub fn name(self) -> &'static str {
        match self {
            Sort::Bool => "Bool",
            Sort::Int => "Int",
            Sort::Real => "Real",
            Sort::String => "String",
            Sort::RegLan => "RegLan",
        }
    }
}

impl fmt::Display for Sort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned when parsing an unknown sort name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseSortError(pub String);

impl fmt::Display for ParseSortError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown sort: {}", self.0)
    }
}

impl std::error::Error for ParseSortError {}

impl FromStr for Sort {
    type Err = ParseSortError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "Bool" => Ok(Sort::Bool),
            "Int" => Ok(Sort::Int),
            "Real" => Ok(Sort::Real),
            "String" => Ok(Sort::String),
            "RegLan" => Ok(Sort::RegLan),
            other => Err(ParseSortError(other.to_owned())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_names() {
        for s in [Sort::Bool, Sort::Int, Sort::Real, Sort::String, Sort::RegLan] {
            assert_eq!(s.name().parse::<Sort>().unwrap(), s);
        }
    }

    #[test]
    fn unknown_sort_is_error() {
        assert!("BitVec".parse::<Sort>().is_err());
    }

    #[test]
    fn fusible_sorts_match_fig6() {
        assert!(Sort::Int.is_fusible());
        assert!(Sort::Real.is_fusible());
        assert!(Sort::String.is_fusible());
        assert!(!Sort::Bool.is_fusible());
        assert!(!Sort::RegLan.is_fusible());
    }
}
