//! Regular-expression semantics for the `RegLan` theory.
//!
//! [`Regex`] is a semantic regex value (as opposed to a `RegLan`-sorted
//! [`Term`](crate::Term), which is syntax). Matching uses Brzozowski
//! derivatives, which handle intersection and complement-free SMT-LIB
//! regexes exactly and without NFA construction.

use std::collections::BTreeSet;
use std::fmt;
use std::rc::Rc;

/// A semantic regular expression over unicode code points.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Regex {
    /// The empty language `re.none`.
    None,
    /// All strings `re.all`.
    All,
    /// Any single character `re.allchar`.
    AllChar,
    /// Exactly the given string (from `str.to_re`).
    Lit(String),
    /// Character range `re.range` (inclusive). Empty if `lo > hi`.
    Range(char, char),
    /// Concatenation.
    Concat(Vec<Rc<Regex>>),
    /// Union.
    Union(Vec<Rc<Regex>>),
    /// Intersection.
    Inter(Vec<Rc<Regex>>),
    /// Kleene star.
    Star(Rc<Regex>),
    /// One or more repetitions.
    Plus(Rc<Regex>),
    /// Zero or one.
    Opt(Rc<Regex>),
}

impl Regex {
    /// The regex matching exactly the empty string.
    pub fn epsilon() -> Regex {
        Regex::Lit(String::new())
    }

    /// Does the language contain the empty string?
    pub fn nullable(&self) -> bool {
        match self {
            Regex::None => false,
            Regex::All => true,
            Regex::AllChar => false,
            Regex::Lit(s) => s.is_empty(),
            Regex::Range(..) => false,
            Regex::Concat(parts) => parts.iter().all(|p| p.nullable()),
            Regex::Union(parts) => parts.iter().any(|p| p.nullable()),
            Regex::Inter(parts) => parts.iter().all(|p| p.nullable()),
            Regex::Star(_) => true,
            Regex::Plus(inner) => inner.nullable(),
            Regex::Opt(_) => true,
        }
    }

    /// Brzozowski derivative with respect to character `c`.
    pub fn derivative(&self, c: char) -> Regex {
        match self {
            Regex::None => Regex::None,
            Regex::All => Regex::All,
            Regex::AllChar => Regex::epsilon(),
            Regex::Lit(s) => match s.chars().next() {
                Some(first) if first == c => Regex::Lit(s.chars().skip(1).collect()),
                _ => Regex::None,
            },
            Regex::Range(lo, hi) => {
                if *lo <= c && c <= *hi {
                    Regex::epsilon()
                } else {
                    Regex::None
                }
            }
            Regex::Concat(parts) => match parts.split_first() {
                None => Regex::None,
                Some((first, rest)) => {
                    let mut tail: Vec<Rc<Regex>> = vec![Rc::new(first.derivative(c))];
                    tail.extend(rest.iter().cloned());
                    let d_first_then_rest = simplify_concat(tail);
                    if first.nullable() {
                        let rest_regex = simplify_concat(rest.to_vec());
                        simplify_union(vec![
                            Rc::new(d_first_then_rest),
                            Rc::new(rest_regex.derivative(c)),
                        ])
                    } else {
                        d_first_then_rest
                    }
                }
            },
            Regex::Union(parts) => {
                simplify_union(parts.iter().map(|p| Rc::new(p.derivative(c))).collect())
            }
            Regex::Inter(parts) => {
                simplify_inter(parts.iter().map(|p| Rc::new(p.derivative(c))).collect())
            }
            Regex::Star(inner) => simplify_concat(vec![
                Rc::new(inner.derivative(c)),
                Rc::new(Regex::Star(inner.clone())),
            ]),
            Regex::Plus(inner) => simplify_concat(vec![
                Rc::new(inner.derivative(c)),
                Rc::new(Regex::Star(inner.clone())),
            ]),
            Regex::Opt(inner) => inner.derivative(c),
        }
    }

    /// Whether the string is in the language.
    ///
    /// # Examples
    ///
    /// ```
    /// use yinyang_smtlib::Regex;
    /// use std::rc::Rc;
    ///
    /// let aa_star = Regex::Star(Rc::new(Regex::Lit("aa".into())));
    /// assert!(aa_star.matches(""));
    /// assert!(aa_star.matches("aaaa"));
    /// assert!(!aa_star.matches("aaa"));
    /// ```
    pub fn matches(&self, s: &str) -> bool {
        let mut current = self.clone();
        for c in s.chars() {
            if current == Regex::None {
                return false;
            }
            current = current.derivative(c);
        }
        current.nullable()
    }

    /// A finite set of characters that can start a match. `None` means
    /// "any character" (the regex contains `re.all`/`re.allchar` at the
    /// front). Used by the bounded string solver to focus enumeration.
    pub fn first_chars(&self) -> Option<BTreeSet<char>> {
        match self {
            Regex::None => Some(BTreeSet::new()),
            Regex::All | Regex::AllChar => None,
            Regex::Lit(s) => Some(s.chars().take(1).collect()),
            Regex::Range(lo, hi) => {
                if lo > hi {
                    return Some(BTreeSet::new());
                }
                let span = (*hi as u32).saturating_sub(*lo as u32);
                if span > 64 {
                    return None;
                }
                Some(((*lo as u32)..=(*hi as u32)).filter_map(char::from_u32).collect())
            }
            Regex::Concat(parts) => {
                let mut out = BTreeSet::new();
                for p in parts {
                    match p.first_chars() {
                        None => return None,
                        Some(cs) => out.extend(cs),
                    }
                    if !p.nullable() {
                        break;
                    }
                }
                Some(out)
            }
            Regex::Union(parts) | Regex::Inter(parts) => {
                let mut out = BTreeSet::new();
                for p in parts {
                    match p.first_chars() {
                        None => return None,
                        Some(cs) => out.extend(cs),
                    }
                }
                Some(out)
            }
            Regex::Star(inner) | Regex::Plus(inner) | Regex::Opt(inner) => inner.first_chars(),
        }
    }

    /// All characters mentioned anywhere in the regex (the relevant
    /// alphabet for bounded enumeration). `None` when unbounded.
    pub fn alphabet(&self) -> Option<BTreeSet<char>> {
        match self {
            Regex::None => Some(BTreeSet::new()),
            Regex::All | Regex::AllChar => None,
            Regex::Lit(s) => Some(s.chars().collect()),
            Regex::Range(lo, hi) => {
                if lo > hi {
                    return Some(BTreeSet::new());
                }
                let span = (*hi as u32).saturating_sub(*lo as u32);
                if span > 64 {
                    return None;
                }
                Some(((*lo as u32)..=(*hi as u32)).filter_map(char::from_u32).collect())
            }
            Regex::Concat(parts) | Regex::Union(parts) | Regex::Inter(parts) => {
                let mut out = BTreeSet::new();
                for p in parts {
                    out.extend(p.alphabet()?);
                }
                Some(out)
            }
            Regex::Star(inner) | Regex::Plus(inner) | Regex::Opt(inner) => inner.alphabet(),
        }
    }
}

fn simplify_concat(parts: Vec<Rc<Regex>>) -> Regex {
    let mut out: Vec<Rc<Regex>> = Vec::new();
    for p in parts {
        match &*p {
            Regex::None => return Regex::None,
            Regex::Lit(s) if s.is_empty() => {}
            Regex::Concat(inner) => out.extend(inner.iter().cloned()),
            _ => out.push(p),
        }
    }
    match out.len() {
        0 => Regex::epsilon(),
        1 => (*out[0]).clone(),
        _ => Regex::Concat(out),
    }
}

fn simplify_union(parts: Vec<Rc<Regex>>) -> Regex {
    let mut out: Vec<Rc<Regex>> = Vec::new();
    for p in parts {
        match &*p {
            Regex::None => {}
            Regex::Union(inner) => out.extend(inner.iter().cloned()),
            _ => {
                if !out.contains(&p) {
                    out.push(p);
                }
            }
        }
    }
    match out.len() {
        0 => Regex::None,
        1 => (*out[0]).clone(),
        _ => Regex::Union(out),
    }
}

fn simplify_inter(parts: Vec<Rc<Regex>>) -> Regex {
    let mut out: Vec<Rc<Regex>> = Vec::new();
    for p in parts {
        match &*p {
            Regex::None => return Regex::None,
            Regex::All => {}
            Regex::Inter(inner) => out.extend(inner.iter().cloned()),
            _ => {
                if !out.contains(&p) {
                    out.push(p);
                }
            }
        }
    }
    match out.len() {
        0 => Regex::All,
        1 => (*out[0]).clone(),
        _ => Regex::Inter(out),
    }
}

impl fmt::Display for Regex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Regex::None => f.write_str("re.none"),
            Regex::All => f.write_str("re.all"),
            Regex::AllChar => f.write_str("re.allchar"),
            Regex::Lit(s) => write!(f, "(str.to_re \"{}\")", crate::printer::escape_string(s)),
            Regex::Range(lo, hi) => write!(f, "(re.range \"{lo}\" \"{hi}\")"),
            Regex::Concat(ps) => {
                f.write_str("(re.++")?;
                for p in ps {
                    write!(f, " {p}")?;
                }
                f.write_str(")")
            }
            Regex::Union(ps) => {
                f.write_str("(re.union")?;
                for p in ps {
                    write!(f, " {p}")?;
                }
                f.write_str(")")
            }
            Regex::Inter(ps) => {
                f.write_str("(re.inter")?;
                for p in ps {
                    write!(f, " {p}")?;
                }
                f.write_str(")")
            }
            Regex::Star(p) => write!(f, "(re.* {p})"),
            Regex::Plus(p) => write!(f, "(re.+ {p})"),
            Regex::Opt(p) => write!(f, "(re.opt {p})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(s: &str) -> Rc<Regex> {
        Rc::new(Regex::Lit(s.into()))
    }

    #[test]
    fn literal_matching() {
        let r = Regex::Lit("abc".into());
        assert!(r.matches("abc"));
        assert!(!r.matches("ab"));
        assert!(!r.matches("abcd"));
        assert!(Regex::epsilon().matches(""));
        assert!(!Regex::epsilon().matches("x"));
    }

    #[test]
    fn star_matching_matches_paper_example() {
        // (re.* (str.to.re "aa")) from Fig. 13a: even runs of 'a' pairs.
        let r = Regex::Star(lit("aa"));
        assert!(r.matches(""));
        assert!(r.matches("aa"));
        assert!(r.matches("aaaa"));
        assert!(!r.matches("a"));
        assert!(!r.matches("aaa"));
        assert!(!r.matches("ab"));
    }

    #[test]
    fn union_and_inter() {
        let u = Regex::Union(vec![lit("a"), lit("b")]);
        assert!(u.matches("a") && u.matches("b") && !u.matches("c"));
        let i = Regex::Inter(vec![Rc::new(Regex::Star(lit("a"))), Rc::new(Regex::Star(lit("aa")))]);
        assert!(i.matches("aaaa"));
        assert!(!i.matches("aaa"));
    }

    #[test]
    fn concat_with_nullable_head() {
        let r = Regex::Concat(vec![Rc::new(Regex::Opt(lit("x"))), lit("y")]);
        assert!(r.matches("xy"));
        assert!(r.matches("y"));
        assert!(!r.matches("x"));
    }

    #[test]
    fn plus_requires_one() {
        let r = Regex::Plus(lit("ab"));
        assert!(!r.matches(""));
        assert!(r.matches("ab"));
        assert!(r.matches("abab"));
        assert!(!r.matches("aba"));
    }

    #[test]
    fn range() {
        let r = Regex::Range('a', 'c');
        assert!(r.matches("a") && r.matches("b") && r.matches("c"));
        assert!(!r.matches("d") && !r.matches("") && !r.matches("ab"));
        let empty = Regex::Range('c', 'a');
        assert!(!empty.matches("b"));
    }

    #[test]
    fn all_and_allchar() {
        assert!(Regex::All.matches(""));
        assert!(Regex::All.matches("anything"));
        assert!(Regex::AllChar.matches("x"));
        assert!(!Regex::AllChar.matches(""));
        assert!(!Regex::AllChar.matches("xy"));
    }

    #[test]
    fn none_matches_nothing() {
        assert!(!Regex::None.matches(""));
        assert!(!Regex::None.matches("a"));
    }

    #[test]
    fn alphabet_collection() {
        let r = Regex::Concat(vec![lit("ab"), Rc::new(Regex::Star(lit("c")))]);
        let a = r.alphabet().unwrap();
        assert_eq!(a.into_iter().collect::<String>(), "abc");
        assert_eq!(Regex::All.alphabet(), None);
    }

    #[test]
    fn first_chars() {
        let r = Regex::Union(vec![lit("ab"), lit("cd")]);
        let f = r.first_chars().unwrap();
        assert_eq!(f.into_iter().collect::<String>(), "ac");
    }

    #[test]
    fn deep_star_terminates() {
        // Star-of-star used to blow up naive engines.
        let r = Regex::Star(Rc::new(Regex::Star(lit("ab"))));
        assert!(r.matches("abab"));
        assert!(!r.matches("aba"));
    }
}
