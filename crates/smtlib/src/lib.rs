//! SMT-LIB v2 front end for the YinYang workspace.
//!
//! This crate is the language substrate the whole reproduction builds on:
//!
//! * [`Term`] / [`Script`] — the AST (terms, sorts, commands);
//! * [`parse_script`] / [`parse_term`] — the parser (accepting both SMT-LIB
//!   2.6 and the paper's legacy Z3 spellings);
//! * printing — `Display` impls produce parseable SMT-LIB text;
//! * [`subst`] — capture-avoiding, occurrence-selective substitution
//!   (the paper's `φ[e/x]_R`);
//! * [`sort_of`] / [`check_script`] — sort inference;
//! * [`Model`] / [`Value`] — the exact-semantics evaluator that serves as
//!   ground truth for seed generation and fusion oracles;
//! * [`Regex`] — derivative-based `RegLan` semantics.
//!
//! # Examples
//!
//! ```
//! use yinyang_smtlib::{parse_script, Model, Value};
//!
//! let script = parse_script(
//!     "(declare-fun x () Int) (assert (> (* x x) 4)) (check-sat)",
//! )?;
//! let mut m = Model::new();
//! m.set("x", Value::Int(3.into()));
//! assert!(m.satisfies(&script.conjunction())?);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

mod eval;
mod lexer;
mod logic;
mod parser;
mod printer;
mod regex;
mod script;
mod sort;
pub mod subst;
mod symbol;
mod term;
mod typecheck;

pub use eval::{regex_of_closed_term, EvalError, Model, Value, ZeroDivPolicy};
pub use lexer::{tokenize, LexError, Token, TokenKind};
pub use logic::{Logic, ParseLogicError};
pub use parser::{op_for_symbol, parse_script, parse_term, ParseError};
pub use printer::escape_string;
pub use regex::Regex;
pub use script::{Command, Script};
pub use sort::{ParseSortError, Sort};
pub use symbol::Symbol;
pub use term::{Arity, Op, Quantifier, Term, TermKind};
pub use typecheck::{check_script, sort_of, SortEnv, TypeError};

/// The canonical text of an SMT-LIB script: parse, drop pure metadata
/// (`set-info`), and print the normal form. Two spellings that differ only
/// in whitespace, comments, or metadata canonicalize to the same text;
/// renaming a variable does not (see [`Script::canonical`]). Regression
/// harnesses hash this to recognize the same test case across campaigns.
pub fn canonical_text(text: &str) -> Result<String, ParseError> {
    parse_script(text).map(|s| s.canonical().to_string())
}
