//! Recursive-descent parser from SMT-LIB text to [`Script`]s and [`Term`]s.
//!
//! The parser accepts both SMT-LIB 2.6 operator spellings and the legacy Z3
//! spellings the paper's figures use (`str.in.re`, `str.to.int`,
//! `int.to.str`, ...). Attribute annotations `(! t :attr v)` are parsed and
//! stripped.

use crate::lexer::{tokenize, LexError, Token, TokenKind};
use crate::script::{Command, Script};
use crate::sort::Sort;
use crate::symbol::Symbol;
use crate::term::{Op, Quantifier, Term};
use std::fmt;
use yinyang_arith::{BigInt, BigRational};

/// Parse error with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset in the source (best effort).
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError { message: e.message, offset: e.offset }
    }
}

/// Maps an operator symbol (canonical or legacy spelling) to its [`Op`].
pub fn op_for_symbol(s: &str) -> Option<Op> {
    Some(match s {
        "not" => Op::Not,
        "=>" => Op::Implies,
        "and" => Op::And,
        "or" => Op::Or,
        "xor" => Op::Xor,
        "=" => Op::Eq,
        "distinct" => Op::Distinct,
        "ite" => Op::Ite,
        "+" => Op::Add,
        "*" => Op::Mul,
        "/" => Op::RealDiv,
        "div" => Op::IntDiv,
        "mod" => Op::Mod,
        "abs" => Op::Abs,
        "<=" => Op::Le,
        "<" => Op::Lt,
        ">=" => Op::Ge,
        ">" => Op::Gt,
        "to_real" | "to-real" => Op::ToReal,
        "to_int" | "to-int" => Op::ToInt,
        "is_int" | "is-int" => Op::IsInt,
        "str.++" => Op::StrConcat,
        "str.len" => Op::StrLen,
        "str.at" => Op::StrAt,
        "str.substr" => Op::StrSubstr,
        "str.prefixof" => Op::StrPrefixOf,
        "str.suffixof" => Op::StrSuffixOf,
        "str.contains" => Op::StrContains,
        "str.indexof" => Op::StrIndexOf,
        "str.replace" => Op::StrReplace,
        "str.replace_all" | "str.replaceall" => Op::StrReplaceAll,
        "str.in_re" | "str.in.re" => Op::StrInRe,
        "str.to_re" | "str.to.re" => Op::StrToRe,
        "str.to_int" | "str.to.int" => Op::StrToInt,
        "str.from_int" | "int.to.str" | "int.to_str" => Op::StrFromInt,
        "re.none" | "re.nostr" => Op::ReNone,
        "re.all" => Op::ReAll,
        "re.allchar" => Op::ReAllChar,
        "re.++" => Op::ReConcat,
        "re.union" => Op::ReUnion,
        "re.inter" => Op::ReInter,
        "re.*" => Op::ReStar,
        "re.+" => Op::RePlus,
        "re.opt" => Op::ReOpt,
        "re.range" => Op::ReRange,
        _ => return None,
    })
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        let offset = self.tokens.get(self.pos).map_or(usize::MAX, |t| t.offset);
        Err(ParseError { message: message.into(), offset })
    }

    fn peek(&self) -> Option<&TokenKind> {
        self.tokens.get(self.pos).map(|t| &t.kind)
    }

    fn next(&mut self) -> Option<TokenKind> {
        let t = self.tokens.get(self.pos).map(|t| t.kind.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect_lparen(&mut self) -> Result<(), ParseError> {
        match self.next() {
            Some(TokenKind::LParen) => Ok(()),
            other => {
                self.pos = self.pos.saturating_sub(1);
                self.err(format!("expected '(', found {other:?}"))
            }
        }
    }

    fn expect_rparen(&mut self) -> Result<(), ParseError> {
        match self.next() {
            Some(TokenKind::RParen) => Ok(()),
            other => {
                self.pos = self.pos.saturating_sub(1);
                self.err(format!("expected ')', found {other:?}"))
            }
        }
    }

    fn expect_symbol(&mut self) -> Result<String, ParseError> {
        match self.next() {
            Some(TokenKind::Symbol(s)) => Ok(s),
            other => {
                self.pos = self.pos.saturating_sub(1);
                self.err(format!("expected symbol, found {other:?}"))
            }
        }
    }

    fn parse_sort(&mut self) -> Result<Sort, ParseError> {
        let name = self.expect_symbol()?;
        name.parse::<Sort>().or_else(|e| self.err(e.to_string()))
    }

    /// Skips one balanced s-expression, returning its verbatim rendering.
    fn skip_sexpr(&mut self) -> Result<String, ParseError> {
        match self.next() {
            None => self.err("unexpected end of input in s-expression"),
            Some(TokenKind::LParen) => {
                let mut parts = Vec::new();
                while !matches!(self.peek(), Some(TokenKind::RParen)) {
                    if self.peek().is_none() {
                        return self.err("unterminated s-expression");
                    }
                    parts.push(self.skip_sexpr()?);
                }
                self.expect_rparen()?;
                Ok(format!("({})", parts.join(" ")))
            }
            Some(TokenKind::RParen) => {
                self.pos -= 1;
                self.err("unexpected ')'")
            }
            Some(tok) => Ok(tok.to_string()),
        }
    }

    fn parse_term(&mut self) -> Result<Term, ParseError> {
        match self.next() {
            None => self.err("unexpected end of input in term"),
            Some(TokenKind::Numeral(n)) => {
                let v: BigInt =
                    n.parse().map_err(|e| ParseError { message: format!("{e}"), offset: 0 })?;
                Ok(Term::int_big(v))
            }
            Some(TokenKind::Decimal(d)) => {
                let v = BigRational::from_decimal_str(&d)
                    .map_err(|e| ParseError { message: format!("{e}"), offset: 0 })?;
                Ok(Term::real(v))
            }
            Some(TokenKind::StringLit(s)) => Ok(Term::str_lit(s)),
            Some(TokenKind::Symbol(s)) => match s.as_str() {
                "true" => Ok(Term::tru()),
                "false" => Ok(Term::fals()),
                _ => match op_for_symbol(&s) {
                    // Nullary regex constants appear bare.
                    Some(op) if matches!(op.arity(), crate::term::Arity::Exact(0)) => {
                        Ok(Term::app(op, vec![]))
                    }
                    _ => Ok(Term::var(s)),
                },
            },
            Some(TokenKind::Keyword(k)) => self.err(format!("keyword :{k} is not a term")),
            Some(TokenKind::RParen) => {
                self.pos -= 1;
                self.err("unexpected ')' in term")
            }
            Some(TokenKind::LParen) => {
                let head = match self.peek() {
                    Some(TokenKind::Symbol(s)) => s.clone(),
                    other => return self.err(format!("expected operator, found {other:?}")),
                };
                self.pos += 1;
                let term = match head.as_str() {
                    "let" => {
                        self.expect_lparen()?;
                        let mut bindings = Vec::new();
                        while !matches!(self.peek(), Some(TokenKind::RParen)) {
                            self.expect_lparen()?;
                            let name = self.expect_symbol()?;
                            let value = self.parse_term()?;
                            self.expect_rparen()?;
                            bindings.push((Symbol::new(name), value));
                        }
                        self.expect_rparen()?;
                        let body = self.parse_term()?;
                        Term::let_in(bindings, body)
                    }
                    "forall" | "exists" => {
                        let q =
                            if head == "forall" { Quantifier::Forall } else { Quantifier::Exists };
                        self.expect_lparen()?;
                        let mut bindings = Vec::new();
                        while !matches!(self.peek(), Some(TokenKind::RParen)) {
                            self.expect_lparen()?;
                            let name = self.expect_symbol()?;
                            let sort = self.parse_sort()?;
                            self.expect_rparen()?;
                            bindings.push((Symbol::new(name), sort));
                        }
                        self.expect_rparen()?;
                        if bindings.is_empty() {
                            return self.err("quantifier with no bindings");
                        }
                        let body = self.parse_term()?;
                        Term::quant(q, bindings, body)
                    }
                    "!" => {
                        // Annotated term: parse the term, skip attributes.
                        let inner = self.parse_term()?;
                        while matches!(self.peek(), Some(TokenKind::Keyword(_))) {
                            self.pos += 1;
                            // Attribute value is optional; skip if present.
                            if !matches!(
                                self.peek(),
                                Some(TokenKind::Keyword(_)) | Some(TokenKind::RParen) | None
                            ) {
                                self.skip_sexpr()?;
                            }
                        }
                        inner
                    }
                    "-" => {
                        let mut args = Vec::new();
                        while !matches!(self.peek(), Some(TokenKind::RParen)) {
                            args.push(self.parse_term()?);
                        }
                        match args.len() {
                            0 => return self.err("'-' needs at least one argument"),
                            1 => {
                                let arg = args.pop().expect("len checked");
                                // Fold (- 1) into a negative literal for
                                // cleaner downstream pattern matching.
                                match arg.kind() {
                                    crate::term::TermKind::IntConst(v) => Term::int_big(-v.clone()),
                                    crate::term::TermKind::RealConst(v) => Term::real(-v.clone()),
                                    _ => Term::neg(arg),
                                }
                            }
                            _ => Term::app(Op::Sub, args),
                        }
                    }
                    _ => match op_for_symbol(&head) {
                        Some(op) => {
                            let mut args = Vec::new();
                            while !matches!(self.peek(), Some(TokenKind::RParen)) {
                                if self.peek().is_none() {
                                    return self.err("unterminated application");
                                }
                                args.push(self.parse_term()?);
                            }
                            if !op.arity().admits(args.len()) {
                                return self.err(format!(
                                    "operator {op} applied to {} arguments",
                                    args.len()
                                ));
                            }
                            // Fold constant real division so the printer's
                            // `(/ p.0 q.0)` rendering of non-decimal
                            // rationals round-trips to the same constant.
                            fold_const_real_div(op, args)
                        }
                        None => {
                            return self
                                .err(format!("unknown operator or uninterpreted function: {head}"))
                        }
                    },
                };
                self.expect_rparen()?;
                Ok(term)
            }
        }
    }

    fn parse_command(&mut self) -> Result<Command, ParseError> {
        self.expect_lparen()?;
        let head = self.expect_symbol()?;
        let cmd = match head.as_str() {
            "set-logic" => Command::SetLogic(self.expect_symbol()?),
            "set-option" => {
                let key = match self.next() {
                    Some(TokenKind::Keyword(k)) => k,
                    other => return self.err(format!("expected keyword, found {other:?}")),
                };
                let value = if matches!(self.peek(), Some(TokenKind::RParen)) {
                    String::new()
                } else {
                    self.skip_sexpr()?
                };
                Command::SetOption(key, value)
            }
            "set-info" => {
                let key = match self.next() {
                    Some(TokenKind::Keyword(k)) => k,
                    other => return self.err(format!("expected keyword, found {other:?}")),
                };
                let value = if matches!(self.peek(), Some(TokenKind::RParen)) {
                    String::new()
                } else {
                    self.skip_sexpr()?
                };
                Command::SetInfo(key, value)
            }
            "declare-fun" => {
                let name = self.expect_symbol()?;
                self.expect_lparen()?;
                let mut args = Vec::new();
                while !matches!(self.peek(), Some(TokenKind::RParen)) {
                    args.push(self.parse_sort()?);
                }
                self.expect_rparen()?;
                let ret = self.parse_sort()?;
                Command::DeclareFun(Symbol::new(name), args, ret)
            }
            "declare-const" => {
                let name = self.expect_symbol()?;
                let sort = self.parse_sort()?;
                Command::DeclareConst(Symbol::new(name), sort)
            }
            "define-fun" => {
                let name = self.expect_symbol()?;
                self.expect_lparen()?;
                let mut params = Vec::new();
                while !matches!(self.peek(), Some(TokenKind::RParen)) {
                    self.expect_lparen()?;
                    let p = self.expect_symbol()?;
                    let s = self.parse_sort()?;
                    self.expect_rparen()?;
                    params.push((Symbol::new(p), s));
                }
                self.expect_rparen()?;
                let ret = self.parse_sort()?;
                let body = self.parse_term()?;
                Command::DefineFun(Symbol::new(name), params, ret, body)
            }
            "assert" => Command::Assert(self.parse_term()?),
            "check-sat" => Command::CheckSat,
            "get-model" => Command::GetModel,
            "exit" => Command::Exit,
            other => return self.err(format!("unsupported command: {other}")),
        };
        self.expect_rparen()?;
        Ok(cmd)
    }
}

/// Folds `(/ c1 c2 ...)` over constant operands with non-zero divisors into
/// a single real constant; returns the plain application otherwise.
fn fold_const_real_div(op: Op, args: Vec<Term>) -> Term {
    use crate::term::TermKind;
    if op != Op::RealDiv {
        return Term::app(op, args);
    }
    let rat_of = |t: &Term| -> Option<BigRational> {
        match t.kind() {
            TermKind::RealConst(v) => Some(v.clone()),
            TermKind::IntConst(v) => Some(BigRational::from_int(v.clone())),
            _ => None,
        }
    };
    let Some(first) = args.first().and_then(|a| rat_of(a)) else {
        return Term::app(op, args);
    };
    let mut acc = first;
    for a in &args[1..] {
        match rat_of(a) {
            Some(v) if !v.is_zero() => acc = &acc / &v,
            _ => return Term::app(op, args),
        }
    }
    Term::real(acc)
}

/// Parses a complete SMT-LIB script.
///
/// # Errors
///
/// Returns a [`ParseError`] on lexical errors, malformed syntax, unknown
/// operators/sorts, arity violations, or unsupported commands.
///
/// # Examples
///
/// ```
/// let script = yinyang_smtlib::parse_script(
///     "(declare-fun x () Int) (assert (> x 0)) (check-sat)",
/// )?;
/// assert_eq!(script.asserts().len(), 1);
/// # Ok::<(), yinyang_smtlib::ParseError>(())
/// ```
pub fn parse_script(input: &str) -> Result<Script, ParseError> {
    let tokens = tokenize(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let mut script = Script::new();
    while p.peek().is_some() {
        script.push(p.parse_command()?);
    }
    Ok(script)
}

/// Parses a single term.
///
/// # Errors
///
/// Returns a [`ParseError`] if the input is not exactly one well-formed term.
pub fn parse_term(input: &str) -> Result<Term, ParseError> {
    let tokens = tokenize(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let t = p.parse_term()?;
    if p.peek().is_some() {
        return p.err("trailing input after term");
    }
    Ok(t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::TermKind;

    #[test]
    fn parses_paper_figure_2() {
        let src = r#"
            ; phi1
            (declare-fun x () Int)
            (declare-fun w () Bool)
            (assert (= x (- 1)))
            (assert (= w (= x (- 1))))
            (assert w)
        "#;
        let s = parse_script(src).unwrap();
        assert_eq!(s.asserts().len(), 3);
        assert_eq!(s.declarations().len(), 2);
        assert_eq!(s.asserts()[0].to_string(), "(= x (- 1))");
    }

    #[test]
    fn parses_legacy_string_ops() {
        let t = parse_term(r#"(str.in.re c (re.* (str.to.re "aa")))"#).unwrap();
        assert_eq!(t.to_string(), "(str.in_re c (re.* (str.to_re \"aa\")))");
    }

    #[test]
    fn unary_minus_folds_literals() {
        assert!(
            matches!(parse_term("(- 1)").unwrap().kind(), TermKind::IntConst(v) if v.is_negative())
        );
        assert_eq!(parse_term("(- x)").unwrap().to_string(), "(- x)");
        assert_eq!(parse_term("(- x y)").unwrap().to_string(), "(- x y)");
    }

    #[test]
    fn parses_quantifiers() {
        let t = parse_term("(exists ((h Real)) (=> (<= 0.0 (/ a h)) (= 0 (/ c e))))").unwrap();
        assert!(t.has_quantifier());
    }

    #[test]
    fn parses_annotations() {
        let t = parse_term("(! (> x 0) :named a1)").unwrap();
        assert_eq!(t.to_string(), "(> x 0)");
    }

    #[test]
    fn parses_let() {
        let t = parse_term("(let ((a (+ x 1))) (> a 0))").unwrap();
        assert_eq!(t.to_string(), "(let ((a (+ x 1))) (> a 0))");
    }

    #[test]
    fn rejects_arity_violations() {
        assert!(parse_term("(ite true 1)").is_err());
        assert!(parse_term("(not a b)").is_err());
        assert!(parse_term("(str.len)").is_err());
    }

    #[test]
    fn rejects_unknown_symbols_in_head_position() {
        assert!(parse_term("(frobnicate x)").is_err());
    }

    #[test]
    fn rejects_unsupported_commands() {
        assert!(parse_script("(push 1)").is_err());
    }

    #[test]
    fn set_option_roundtrip() {
        let s = parse_script("(set-option :smt.string_solver z3str3)").unwrap();
        assert_eq!(s.commands[0], Command::SetOption("smt.string_solver".into(), "z3str3".into()));
    }

    #[test]
    fn roundtrip_print_parse() {
        let srcs = [
            "(assert (= (div z y) (- 1)))",
            "(assert (ite v false (= (div z x) (- 1))))",
            r#"(assert (= 0 (str.to_int (str.replace a b (str.at a (str.len a))))))"#,
            "(assert (or (not (= (+ (+ 1.0 (/ z y)) 6.0) (+ 7.0 x))) (and (< (/ z x) v) (>= w v))))",
        ];
        for src in srcs {
            let s1 = parse_script(src).unwrap();
            let s2 = parse_script(&s1.to_string()).unwrap();
            assert_eq!(s1, s2, "roundtrip failed for {src}");
        }
    }

    #[test]
    fn nullary_regex_constants() {
        let t = parse_term("(str.in_re x re.allchar)").unwrap();
        assert_eq!(t.to_string(), "(str.in_re x re.allchar)");
    }
}
