//! SMT-LIB 2 lexer.
//!
//! Produces the token stream the recursive-descent [`parser`](crate::parser)
//! consumes: parentheses, symbols, keywords, numerals, decimals, and string
//! literals. Comments (`;` to end of line) are skipped. Quoted symbols
//! (`|...|`) are supported and unquoted.

use std::fmt;

/// A single SMT-LIB token with its byte offset (for error messages).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Token payload.
    pub kind: TokenKind,
    /// Byte offset of the first character in the input.
    pub offset: usize,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// `(`.
    LParen,
    /// `)`.
    RParen,
    /// A simple or quoted symbol, e.g. `str.len`, `x!0`, `<=`.
    Symbol(String),
    /// A keyword, e.g. `:status`.
    Keyword(String),
    /// A non-negative integer numeral.
    Numeral(String),
    /// A decimal like `1.5`.
    Decimal(String),
    /// A string literal with escapes already resolved.
    StringLit(String),
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::LParen => f.write_str("("),
            TokenKind::RParen => f.write_str(")"),
            TokenKind::Symbol(s) => write!(f, "{s}"),
            TokenKind::Keyword(s) => write!(f, ":{s}"),
            TokenKind::Numeral(s) | TokenKind::Decimal(s) => write!(f, "{s}"),
            TokenKind::StringLit(s) => write!(f, "\"{s}\""),
        }
    }
}

/// Lexing error with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// What went wrong.
    pub message: String,
    /// Byte offset of the offending character.
    pub offset: usize,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for LexError {}

fn is_symbol_char(c: char) -> bool {
    c.is_ascii_alphanumeric()
        || matches!(
            c,
            '~' | '!'
                | '@'
                | '$'
                | '%'
                | '^'
                | '&'
                | '*'
                | '_'
                | '-'
                | '+'
                | '='
                | '<'
                | '>'
                | '.'
                | '?'
                | '/'
        )
}

/// Tokenizes SMT-LIB source text.
///
/// # Errors
///
/// Returns a [`LexError`] on unterminated strings/quoted symbols or
/// characters outside the SMT-LIB lexical grammar.
pub fn tokenize(input: &str) -> Result<Vec<Token>, LexError> {
    let mut tokens = Vec::new();
    let bytes: Vec<char> = input.chars().collect();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            c if c.is_whitespace() => i += 1,
            ';' => {
                while i < bytes.len() && bytes[i] != '\n' {
                    i += 1;
                }
            }
            '(' => {
                tokens.push(Token { kind: TokenKind::LParen, offset: i });
                i += 1;
            }
            ')' => {
                tokens.push(Token { kind: TokenKind::RParen, offset: i });
                i += 1;
            }
            '"' => {
                let start = i;
                i += 1;
                let mut s = String::new();
                loop {
                    if i >= bytes.len() {
                        return Err(LexError {
                            message: "unterminated string literal".to_owned(),
                            offset: start,
                        });
                    }
                    if bytes[i] == '"' {
                        if i + 1 < bytes.len() && bytes[i + 1] == '"' {
                            s.push('"');
                            i += 2;
                        } else {
                            i += 1;
                            break;
                        }
                    } else {
                        s.push(bytes[i]);
                        i += 1;
                    }
                }
                tokens.push(Token { kind: TokenKind::StringLit(s), offset: start });
            }
            '|' => {
                let start = i;
                i += 1;
                let mut s = String::new();
                while i < bytes.len() && bytes[i] != '|' {
                    s.push(bytes[i]);
                    i += 1;
                }
                if i >= bytes.len() {
                    return Err(LexError {
                        message: "unterminated quoted symbol".to_owned(),
                        offset: start,
                    });
                }
                i += 1;
                tokens.push(Token { kind: TokenKind::Symbol(s), offset: start });
            }
            ':' => {
                let start = i;
                i += 1;
                let mut s = String::new();
                while i < bytes.len() && is_symbol_char(bytes[i]) {
                    s.push(bytes[i]);
                    i += 1;
                }
                if s.is_empty() {
                    return Err(LexError { message: "empty keyword".to_owned(), offset: start });
                }
                tokens.push(Token { kind: TokenKind::Keyword(s), offset: start });
            }
            c if c.is_ascii_digit() => {
                let start = i;
                let mut s = String::new();
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    s.push(bytes[i]);
                    i += 1;
                }
                if i < bytes.len() && bytes[i] == '.' {
                    s.push('.');
                    i += 1;
                    if i >= bytes.len() || !bytes[i].is_ascii_digit() {
                        return Err(LexError {
                            message: "decimal requires digits after '.'".to_owned(),
                            offset: i.min(bytes.len()),
                        });
                    }
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        s.push(bytes[i]);
                        i += 1;
                    }
                    tokens.push(Token { kind: TokenKind::Decimal(s), offset: start });
                } else {
                    tokens.push(Token { kind: TokenKind::Numeral(s), offset: start });
                }
            }
            c if is_symbol_char(c) => {
                let start = i;
                let mut s = String::new();
                while i < bytes.len() && is_symbol_char(bytes[i]) {
                    s.push(bytes[i]);
                    i += 1;
                }
                tokens.push(Token { kind: TokenKind::Symbol(s), offset: start });
            }
            other => {
                return Err(LexError {
                    message: format!("unexpected character {other:?}"),
                    offset: i,
                });
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            kinds("(assert (= x 1))"),
            vec![
                TokenKind::LParen,
                TokenKind::Symbol("assert".into()),
                TokenKind::LParen,
                TokenKind::Symbol("=".into()),
                TokenKind::Symbol("x".into()),
                TokenKind::Numeral("1".into()),
                TokenKind::RParen,
                TokenKind::RParen,
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("; phi1\nx ; trailing\ny"),
            vec![TokenKind::Symbol("x".into()), TokenKind::Symbol("y".into()),]
        );
    }

    #[test]
    fn string_escapes() {
        assert_eq!(kinds(r#""a""b""#), vec![TokenKind::StringLit("a\"b".into())]);
        assert_eq!(kinds(r#""""#), vec![TokenKind::StringLit(String::new())]);
    }

    #[test]
    fn decimals_and_numerals() {
        assert_eq!(
            kinds("1.5 42 0.0"),
            vec![
                TokenKind::Decimal("1.5".into()),
                TokenKind::Numeral("42".into()),
                TokenKind::Decimal("0.0".into()),
            ]
        );
    }

    #[test]
    fn operator_symbols() {
        assert_eq!(
            kinds("<= >= str.++ re.*"),
            vec![
                TokenKind::Symbol("<=".into()),
                TokenKind::Symbol(">=".into()),
                TokenKind::Symbol("str.++".into()),
                TokenKind::Symbol("re.*".into()),
            ]
        );
    }

    #[test]
    fn keywords() {
        assert_eq!(kinds(":status"), vec![TokenKind::Keyword("status".into())]);
    }

    #[test]
    fn quoted_symbols() {
        assert_eq!(kinds("|hello world|"), vec![TokenKind::Symbol("hello world".into())]);
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(tokenize("\"abc").is_err());
        assert!(tokenize("|abc").is_err());
    }

    #[test]
    fn bad_decimal_errors() {
        assert!(tokenize("(= x 1.)").is_err());
    }
}
