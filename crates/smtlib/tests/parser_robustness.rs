//! Robustness: the lexer/parser must never panic — any byte soup either
//! parses or returns a structured error.

use proptest::prelude::*;
use yinyang_smtlib::{parse_script, parse_term, tokenize};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn tokenizer_never_panics(input in ".{0,200}") {
        let _ = tokenize(&input);
    }

    #[test]
    fn parser_never_panics_on_arbitrary_text(input in ".{0,200}") {
        let _ = parse_script(&input);
        let _ = parse_term(&input);
    }

    #[test]
    fn parser_never_panics_on_sexpr_soup(
        input in r#"[()a-z0-9:"|;.\-+*= ]{0,160}"#,
    ) {
        let _ = parse_script(&input);
    }

    #[test]
    fn parse_of_printed_script_is_total(
        names in proptest::collection::vec("[a-z][a-z0-9]{0,5}", 1..4),
        vals in proptest::collection::vec(-100i64..100, 1..4),
    ) {
        // Scripts we print always reparse.
        let mut script = yinyang_smtlib::Script::new();
        for (n, v) in names.iter().zip(&vals) {
            script.declare_var(n.as_str(), yinyang_smtlib::Sort::Int);
            script.assert_term(yinyang_smtlib::Term::eq(
                yinyang_smtlib::Term::var(n.as_str()),
                yinyang_smtlib::Term::int(*v),
            ));
        }
        let text = script.to_string();
        prop_assert!(parse_script(&text).is_ok(), "failed to reparse: {text}");
    }
}

#[test]
fn deeply_nested_input_is_handled() {
    // 300 levels of nesting: must error or parse without stack overflow.
    let deep = format!("{}x{}", "(not ".repeat(300), ")".repeat(300));
    let _ = parse_term(&deep);
    let unbalanced = "(".repeat(500);
    assert!(parse_script(&unbalanced).is_err());
}

#[test]
fn pathological_strings() {
    for s in [
        "\"",
        "\"\"\"",
        "(assert \"",
        "|",
        "(assert (= x 1.))",
        "(assert (= x .5))",
        "(assert ())",
        "(check-sat",
        ")",
    ] {
        let _ = parse_script(s); // must not panic
    }
}
