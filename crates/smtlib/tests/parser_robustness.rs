//! Robustness: the lexer/parser must never panic — any byte soup either
//! parses or returns a structured error.

use yinyang_rt::{props, Rng, StdRng};
use yinyang_smtlib::{parse_script, parse_term, tokenize};

/// Arbitrary printable text (plus some control/unicode characters) up to
/// `max` characters.
fn any_text(rng: &mut StdRng, max: usize) -> String {
    let n = rng.random_range(0..=max);
    (0..n)
        .map(|_| match rng.random_range(0..10usize) {
            0 => char::from(rng.random_range(0u8..32) as u8), // control chars
            1 => ['λ', '∀', '𝔽', 'é', '\u{7f}'][rng.random_range(0..5usize)],
            _ => char::from(rng.random_range(32u8..127)),
        })
        .collect()
}

/// S-expression-flavored soup: the characters the grammar actually uses.
fn sexpr_soup(rng: &mut StdRng, max: usize) -> String {
    const CHARS: &[u8] = br#"()abcdefghijklmnopqrstuvwxyz0123456789:"|;.-+*= "#;
    let n = rng.random_range(0..=max);
    (0..n).map(|_| CHARS[rng.random_range(0..CHARS.len())] as char).collect()
}

props! {
    cases: 512;

    fn tokenizer_never_panics(input in |r: &mut StdRng| any_text(r, 200)) {
        let _ = tokenize(&input);
    }

    fn parser_never_panics_on_arbitrary_text(input in |r: &mut StdRng| any_text(r, 200)) {
        let _ = parse_script(&input);
        let _ = parse_term(&input);
    }

    fn parser_never_panics_on_sexpr_soup(input in |r: &mut StdRng| sexpr_soup(r, 160)) {
        let _ = parse_script(&input);
    }

    fn accepted_soup_reaches_a_print_fixed_point(input in |r: &mut StdRng| sexpr_soup(r, 160)) {
        // Whenever random soup happens to parse, one parse→print round
        // normalizes it: reparsing the printed form is total and a fixed
        // point of print∘parse.
        if let Ok(script) = parse_script(&input) {
            let printed = script.to_string();
            let reparsed = parse_script(&printed)
                .unwrap_or_else(|e| panic!("printed script failed to reparse: {e}\n{printed}"));
            assert_eq!(reparsed, script);
            assert_eq!(reparsed.to_string(), printed, "print not idempotent");
        }
    }

    fn parse_of_printed_script_is_total(seed in |r: &mut StdRng| r.random_range(0u64..=u64::MAX)) {
        // Scripts we print always reparse.
        let mut rng = StdRng::seed_from_u64(seed);
        let count = rng.random_range(1..4usize);
        let mut script = yinyang_smtlib::Script::new();
        for i in 0..count {
            let len = rng.random_range(0..=5usize);
            let mut name = String::new();
            name.push(char::from(rng.random_range(b'a'..=b'z')));
            for _ in 0..len {
                let c = if rng.random_bool(0.7) {
                    rng.random_range(b'a'..=b'z')
                } else {
                    rng.random_range(b'0'..=b'9')
                };
                name.push(char::from(c));
            }
            // Suffix with the index so repeated names stay distinct.
            let name = format!("{name}{i}");
            let v = rng.random_range(-100i64..100);
            script.declare_var(name.as_str(), yinyang_smtlib::Sort::Int);
            script.assert_term(yinyang_smtlib::Term::eq(
                yinyang_smtlib::Term::var(name.as_str()),
                yinyang_smtlib::Term::int(v),
            ));
        }
        let text = script.to_string();
        assert!(parse_script(&text).is_ok(), "failed to reparse: {text}");
    }
}

#[test]
fn deeply_nested_input_is_handled() {
    // 300 levels of nesting: must error or parse without stack overflow.
    let deep = format!("{}x{}", "(not ".repeat(300), ")".repeat(300));
    let _ = parse_term(&deep);
    let unbalanced = "(".repeat(500);
    assert!(parse_script(&unbalanced).is_err());
}

#[test]
fn pathological_strings() {
    for s in [
        "\"",
        "\"\"\"",
        "(assert \"",
        "|",
        "(assert (= x 1.))",
        "(assert (= x .5))",
        "(assert ())",
        "(check-sat",
        ")",
    ] {
        let _ = parse_script(s); // must not panic
    }
}
