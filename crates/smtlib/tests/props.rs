//! Property tests for the SMT-LIB front end: print∘parse is the identity
//! on ASTs, substitution respects occurrence counts, and evaluation is
//! deterministic.

use yinyang_arith::{BigInt, BigRational};
use yinyang_rt::{props, Rng, StdRng};
use yinyang_smtlib::subst::{substitute_free, substitute_occurrences};
use yinyang_smtlib::{parse_term, Model, Op, Symbol, Term, Value};

/// An arbitrary well-formed *Int-sorted* term over variables x, y.
fn int_term(rng: &mut StdRng, depth: usize) -> Term {
    if depth == 0 || rng.random_bool(0.3) {
        return match rng.random_range(0..3usize) {
            0 => Term::int(rng.random_range(-50i64..50)),
            1 => Term::var("x"),
            _ => Term::var("y"),
        };
    }
    match rng.random_range(0..5usize) {
        0 => Term::add(vec![int_term(rng, depth - 1), int_term(rng, depth - 1)]),
        1 => Term::sub(int_term(rng, depth - 1), int_term(rng, depth - 1)),
        2 => Term::mul(vec![int_term(rng, depth - 1), int_term(rng, depth - 1)]),
        3 => Term::neg(int_term(rng, depth - 1)),
        _ => Term::imod(int_term(rng, depth - 1), int_term(rng, depth - 1)),
    }
}

/// An arbitrary boolean structure above integer atoms.
fn bool_term(rng: &mut StdRng, depth: usize) -> Term {
    if depth == 0 || rng.random_bool(0.3) {
        return match rng.random_range(0..5usize) {
            0 => Term::le(int_term(rng, 2), int_term(rng, 2)),
            1 => Term::lt(int_term(rng, 2), int_term(rng, 2)),
            2 => Term::eq(int_term(rng, 2), int_term(rng, 2)),
            3 => Term::tru(),
            _ => Term::fals(),
        };
    }
    match rng.random_range(0..4usize) {
        0 => Term::and(vec![bool_term(rng, depth - 1), bool_term(rng, depth - 1)]),
        1 => Term::or(vec![bool_term(rng, depth - 1), bool_term(rng, depth - 1)]),
        2 => Term::not(bool_term(rng, depth - 1)),
        _ => Term::ite(
            bool_term(rng, depth - 1),
            bool_term(rng, depth - 1),
            bool_term(rng, depth - 1),
        ),
    }
}

/// A term seed: the test body rebuilds the term deterministically from it,
/// so the harness shrinks a plain integer instead of the AST.
fn any_seed(r: &mut StdRng) -> u64 {
    r.random_range(0u64..=u64::MAX)
}

props! {
    fn print_parse_roundtrip_int(seed in any_seed) {
        let t = int_term(&mut StdRng::seed_from_u64(seed), 3);
        let text = t.to_string();
        let parsed = parse_term(&text).unwrap_or_else(|e| panic!("{e}: {text}"));
        assert_eq!(parsed, t);
    }

    fn print_parse_roundtrip_bool(seed in any_seed) {
        let t = bool_term(&mut StdRng::seed_from_u64(seed), 3);
        let text = t.to_string();
        let parsed = parse_term(&text).unwrap_or_else(|e| panic!("{e}: {text}"));
        assert_eq!(parsed, t);
    }

    fn substitution_removes_all_occurrences(seed in any_seed) {
        let t = int_term(&mut StdRng::seed_from_u64(seed), 3);
        let x = Symbol::new("x");
        let out = substitute_free(&t, &x, &Term::int(7));
        assert_eq!(out.count_free_occurrences(&x), 0);
    }

    fn partial_substitution_counts(seed in any_seed, mask in any_seed) {
        let t = int_term(&mut StdRng::seed_from_u64(seed), 3);
        let x = Symbol::new("x");
        let n = t.count_free_occurrences(&x);
        let mut replaced = 0usize;
        let out = substitute_occurrences(&t, &x, &Term::int(3), &mut |i| {
            let hit = (mask >> (i % 64)) & 1 == 1;
            replaced += usize::from(hit);
            hit
        });
        assert_eq!(out.count_free_occurrences(&x), n - replaced);
    }

    fn eval_deterministic_and_total_on_nonzero_mod(
        seed in any_seed,
        xv in |r: &mut StdRng| r.random_range(-20i64..20),
        yv in |r: &mut StdRng| r.random_range(1i64..20),
    ) {
        let t = int_term(&mut StdRng::seed_from_u64(seed), 3);
        let mut m = Model::new();
        m.set("x", Value::Int(BigInt::from(xv)));
        m.set("y", Value::Int(BigInt::from(yv)));
        // mod by zero can occur (constants 0 in the term) — only require
        // determinism, not success.
        let a = m.eval(&t);
        let b = m.eval(&t);
        assert_eq!(a, b);
    }

    fn eval_matches_i128_semantics(xv in |r: &mut StdRng| r.random_range(-9i64..9),
                                   yv in |r: &mut StdRng| r.random_range(-9i64..9),
                                   k in |r: &mut StdRng| r.random_range(-9i64..9)) {
        // (+ (* x y) k) evaluated exactly.
        let t = Term::add(vec![
            Term::mul(vec![Term::var("x"), Term::var("y")]),
            Term::int(k),
        ]);
        let mut m = Model::new();
        m.set("x", Value::Int(BigInt::from(xv)));
        m.set("y", Value::Int(BigInt::from(yv)));
        assert_eq!(
            m.eval(&t).unwrap(),
            Value::Int(BigInt::from(xv * yv + k))
        );
    }

    fn simplify_agnostic_printing(num in |r: &mut StdRng| r.random_range(-30i64..30),
                                  den in |r: &mut StdRng| r.random_range(1i64..30)) {
        // Real constants always roundtrip regardless of denominator shape.
        let t = Term::real(BigRational::new(num.into(), den.into()));
        let parsed = parse_term(&t.to_string()).unwrap();
        assert_eq!(parsed, t);
    }

    fn string_literals_roundtrip(s in |r: &mut StdRng| {
        const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyz\"0123456789 ";
        let n = r.random_range(0..=12usize);
        (0..n)
            .map(|_| ALPHABET[r.random_range(0..ALPHABET.len())] as char)
            .collect::<String>()
    }) {
        let t = Term::str_lit(s.clone());
        let parsed = parse_term(&t.to_string()).unwrap();
        assert_eq!(parsed, t);
    }

    fn print_is_a_parse_fixed_point(seed in any_seed) {
        // parse → print → parse: the first parse normalizes the text, and
        // printing is a fixed point from there on (both for the text and
        // the AST).
        let t = bool_term(&mut StdRng::seed_from_u64(seed), 3);
        let text1 = t.to_string();
        let p1 = parse_term(&text1).unwrap_or_else(|e| panic!("{e}: {text1}"));
        let text2 = p1.to_string();
        assert_eq!(text2, text1, "printing is not idempotent after a parse");
        let p2 = parse_term(&text2).unwrap();
        assert_eq!(p2, p1);
    }

    fn flattened_ops_admit_any_arity(n in |r: &mut StdRng| r.random_range(2usize..6)) {
        let args: Vec<Term> = (0..n as i64).map(Term::int).collect();
        for op in [Op::Add, Op::Mul, Op::And, Op::Or] {
            let args = if matches!(op, Op::And | Op::Or) {
                (0..n).map(|i| Term::bool(i % 2 == 0)).collect()
            } else {
                args.clone()
            };
            let t = Term::app(op, args);
            let parsed = parse_term(&t.to_string()).unwrap();
            assert_eq!(parsed, t);
        }
    }
}
