//! Property tests for the SMT-LIB front end: print∘parse is the identity
//! on ASTs, substitution respects occurrence counts, and evaluation is
//! deterministic.

use proptest::prelude::*;
use yinyang_smtlib::subst::{substitute_free, substitute_occurrences};
use yinyang_smtlib::{parse_term, Model, Op, Symbol, Term, Value};
use yinyang_arith::{BigInt, BigRational};

/// A strategy for arbitrary well-formed *Int-sorted* terms over variables
/// x, y and an arbitrary boolean structure above them.
fn int_term() -> impl Strategy<Value = Term> {
    let leaf = prop_oneof![
        (-50i64..50).prop_map(Term::int),
        Just(Term::var("x")),
        Just(Term::var("y")),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Term::add(vec![a, b])),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Term::sub(a, b)),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Term::mul(vec![a, b])),
            inner.clone().prop_map(Term::neg),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Term::imod(a, b)),
        ]
    })
}

fn bool_term() -> impl Strategy<Value = Term> {
    let atom = prop_oneof![
        (int_term(), int_term()).prop_map(|(a, b)| Term::le(a, b)),
        (int_term(), int_term()).prop_map(|(a, b)| Term::lt(a, b)),
        (int_term(), int_term()).prop_map(|(a, b)| Term::eq(a, b)),
        Just(Term::tru()),
        Just(Term::fals()),
    ];
    atom.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Term::and(vec![a, b])),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Term::or(vec![a, b])),
            inner.clone().prop_map(Term::not),
            (inner.clone(), inner.clone(), inner.clone())
                .prop_map(|(c, t, e)| Term::ite(c, t, e)),
        ]
    })
}

proptest! {
    #[test]
    fn print_parse_roundtrip_int(t in int_term()) {
        let text = t.to_string();
        let parsed = parse_term(&text).unwrap_or_else(|e| panic!("{e}: {text}"));
        prop_assert_eq!(parsed, t);
    }

    #[test]
    fn print_parse_roundtrip_bool(t in bool_term()) {
        let text = t.to_string();
        let parsed = parse_term(&text).unwrap_or_else(|e| panic!("{e}: {text}"));
        prop_assert_eq!(parsed, t);
    }

    #[test]
    fn substitution_removes_all_occurrences(t in int_term()) {
        let x = Symbol::new("x");
        let out = substitute_free(&t, &x, &Term::int(7));
        prop_assert_eq!(out.count_free_occurrences(&x), 0);
    }

    #[test]
    fn partial_substitution_counts(t in int_term(), mask in any::<u64>()) {
        let x = Symbol::new("x");
        let n = t.count_free_occurrences(&x);
        let mut replaced = 0usize;
        let out = substitute_occurrences(&t, &x, &Term::int(3), &mut |i| {
            let hit = (mask >> (i % 64)) & 1 == 1;
            replaced += usize::from(hit);
            hit
        });
        prop_assert_eq!(out.count_free_occurrences(&x), n - replaced);
    }

    #[test]
    fn eval_deterministic_and_total_on_nonzero_mod(
        t in int_term(), xv in -20i64..20, yv in 1i64..20,
    ) {
        let mut m = Model::new();
        m.set("x", Value::Int(BigInt::from(xv)));
        m.set("y", Value::Int(BigInt::from(yv)));
        // mod by zero can occur (constants 0 in the term) — only require
        // determinism, not success.
        let a = m.eval(&t);
        let b = m.eval(&t);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn eval_matches_i128_semantics(xv in -9i64..9, yv in -9i64..9, k in -9i64..9) {
        // (+ (* x y) k) evaluated exactly.
        let t = Term::add(vec![
            Term::mul(vec![Term::var("x"), Term::var("y")]),
            Term::int(k),
        ]);
        let mut m = Model::new();
        m.set("x", Value::Int(BigInt::from(xv)));
        m.set("y", Value::Int(BigInt::from(yv)));
        prop_assert_eq!(
            m.eval(&t).unwrap(),
            Value::Int(BigInt::from(xv * yv + k))
        );
    }

    #[test]
    fn simplify_agnostic_printing(num in -30i64..30, den in 1i64..30) {
        // Real constants always roundtrip regardless of denominator shape.
        let t = Term::real(BigRational::new(num.into(), den.into()));
        let parsed = parse_term(&t.to_string()).unwrap();
        prop_assert_eq!(parsed, t);
    }

    #[test]
    fn string_literals_roundtrip(s in "[a-z\"0-9 ]{0,12}") {
        let t = Term::str_lit(s.clone());
        let parsed = parse_term(&t.to_string()).unwrap();
        prop_assert_eq!(parsed, t);
    }

    #[test]
    fn flattened_ops_admit_any_arity(n in 2usize..6) {
        let args: Vec<Term> = (0..n as i64).map(Term::int).collect();
        for op in [Op::Add, Op::Mul, Op::And, Op::Or] {
            let args = if matches!(op, Op::And | Op::Or) {
                (0..n).map(|i| Term::bool(i % 2 == 0)).collect()
            } else {
                args.clone()
            };
            let t = Term::app(op, args);
            let parsed = parse_term(&t.to_string()).unwrap();
            prop_assert_eq!(parsed, t);
        }
    }
}
