//! Property tests for the derivative-based regex engine: agreement with a
//! naive exponential reference matcher on random regexes and strings.

use proptest::prelude::*;
use std::rc::Rc;
use yinyang_smtlib::Regex;

/// Naive reference: does `re` match `s`? Exponential backtracking over
/// split points — obviously correct, only usable on small inputs.
fn reference_matches(re: &Regex, s: &[char]) -> bool {
    match re {
        Regex::None => false,
        Regex::All => true,
        Regex::AllChar => s.len() == 1,
        Regex::Lit(lit) => {
            let lit: Vec<char> = lit.chars().collect();
            s == lit.as_slice()
        }
        Regex::Range(lo, hi) => s.len() == 1 && *lo <= s[0] && s[0] <= *hi,
        Regex::Concat(parts) => match parts.split_first() {
            None => s.is_empty(),
            Some((first, rest)) => {
                let rest_re = Regex::Concat(rest.to_vec());
                (0..=s.len()).any(|k| {
                    reference_matches(first, &s[..k])
                        && reference_matches(&rest_re, &s[k..])
                })
            }
        },
        Regex::Union(parts) => parts.iter().any(|p| reference_matches(p, s)),
        Regex::Inter(parts) => parts.iter().all(|p| reference_matches(p, s)),
        Regex::Star(inner) => {
            if s.is_empty() {
                return true;
            }
            // Try a non-empty first chunk to guarantee progress.
            (1..=s.len()).any(|k| {
                reference_matches(inner, &s[..k]) && reference_matches(re, &s[k..])
            })
        }
        Regex::Plus(inner) => {
            if s.is_empty() {
                // (ε-containing)+ matches the empty string.
                return reference_matches(inner, s);
            }
            (1..=s.len()).any(|k| {
                reference_matches(inner, &s[..k])
                    && reference_matches(&Regex::Star(inner.clone()), &s[k..])
            })
        }
        Regex::Opt(inner) => s.is_empty() || reference_matches(inner, s),
    }
}

/// Strategy for small regexes over {a, b}.
fn small_regex() -> impl Strategy<Value = Regex> {
    let leaf = prop_oneof![
        Just(Regex::None),
        Just(Regex::AllChar),
        "[ab]{0,2}".prop_map(Regex::Lit),
        Just(Regex::Range('a', 'b')),
    ];
    leaf.prop_recursive(3, 12, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| {
                Regex::Concat(vec![Rc::new(a), Rc::new(b)])
            }),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| {
                Regex::Union(vec![Rc::new(a), Rc::new(b)])
            }),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| {
                Regex::Inter(vec![Rc::new(a), Rc::new(b)])
            }),
            inner.clone().prop_map(|a| Regex::Star(Rc::new(a))),
            inner.clone().prop_map(|a| Regex::Plus(Rc::new(a))),
            inner.clone().prop_map(|a| Regex::Opt(Rc::new(a))),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn derivatives_agree_with_reference(re in small_regex(), s in "[ab]{0,6}") {
        let chars: Vec<char> = s.chars().collect();
        prop_assert_eq!(
            re.matches(&s),
            reference_matches(&re, &chars),
            "disagreement on {} vs {:?}",
            s,
            re
        );
    }

    #[test]
    fn nullable_iff_matches_empty(re in small_regex()) {
        prop_assert_eq!(re.nullable(), re.matches(""));
    }

    #[test]
    fn derivative_characterization(re in small_regex(), s in "[ab]{1,5}") {
        // matches(c·w) == derivative(c).matches(w)
        let mut chars = s.chars();
        let c = chars.next().expect("non-empty");
        let rest: String = chars.collect();
        prop_assert_eq!(re.matches(&s), re.derivative(c).matches(&rest));
    }

    #[test]
    fn first_chars_is_sound(re in small_regex(), s in "[ab]{1,5}") {
        // If the regex matches s, then s's first char is in first_chars()
        // (when that set is finite).
        if re.matches(&s) {
            if let Some(first) = re.first_chars() {
                let c = s.chars().next().expect("non-empty");
                prop_assert!(
                    first.contains(&c),
                    "{c} missing from first_chars of {re:?}"
                );
            }
        }
    }

    #[test]
    fn alphabet_covers_matches(re in small_regex(), s in "[ab]{1,4}") {
        // Every matched string only uses characters from alphabet() —
        // except AllChar/All which report None.
        if re.matches(&s) {
            if let Some(alpha) = re.alphabet() {
                for c in s.chars() {
                    prop_assert!(alpha.contains(&c), "{c} outside alphabet of {re:?}");
                }
            }
        }
    }
}
