//! Property tests for the derivative-based regex engine: agreement with a
//! naive exponential reference matcher on random regexes and strings.

use std::rc::Rc;
use yinyang_rt::{props, Rng, StdRng};
use yinyang_smtlib::Regex;

/// Naive reference: does `re` match `s`? Exponential backtracking over
/// split points — obviously correct, only usable on small inputs.
fn reference_matches(re: &Regex, s: &[char]) -> bool {
    match re {
        Regex::None => false,
        Regex::All => true,
        Regex::AllChar => s.len() == 1,
        Regex::Lit(lit) => {
            let lit: Vec<char> = lit.chars().collect();
            s == lit.as_slice()
        }
        Regex::Range(lo, hi) => s.len() == 1 && *lo <= s[0] && s[0] <= *hi,
        Regex::Concat(parts) => match parts.split_first() {
            None => s.is_empty(),
            Some((first, rest)) => {
                let rest_re = Regex::Concat(rest.to_vec());
                (0..=s.len()).any(|k| {
                    reference_matches(first, &s[..k]) && reference_matches(&rest_re, &s[k..])
                })
            }
        },
        Regex::Union(parts) => parts.iter().any(|p| reference_matches(p, s)),
        Regex::Inter(parts) => parts.iter().all(|p| reference_matches(p, s)),
        Regex::Star(inner) => {
            if s.is_empty() {
                return true;
            }
            // Try a non-empty first chunk to guarantee progress.
            (1..=s.len())
                .any(|k| reference_matches(inner, &s[..k]) && reference_matches(re, &s[k..]))
        }
        Regex::Plus(inner) => {
            if s.is_empty() {
                // (ε-containing)+ matches the empty string.
                return reference_matches(inner, s);
            }
            (1..=s.len()).any(|k| {
                reference_matches(inner, &s[..k])
                    && reference_matches(&Regex::Star(inner.clone()), &s[k..])
            })
        }
        Regex::Opt(inner) => s.is_empty() || reference_matches(inner, s),
    }
}

/// A small regex over {a, b}, built by ordinary recursion.
fn small_regex(rng: &mut StdRng, depth: usize) -> Regex {
    if depth == 0 || rng.random_bool(0.35) {
        return match rng.random_range(0..4usize) {
            0 => Regex::None,
            1 => Regex::AllChar,
            2 => {
                let n = rng.random_range(0..=2usize);
                let lit: String =
                    (0..n).map(|_| if rng.random_bool(0.5) { 'a' } else { 'b' }).collect();
                Regex::Lit(lit)
            }
            _ => Regex::Range('a', 'b'),
        };
    }
    match rng.random_range(0..6usize) {
        0 => Regex::Concat(vec![
            Rc::new(small_regex(rng, depth - 1)),
            Rc::new(small_regex(rng, depth - 1)),
        ]),
        1 => Regex::Union(vec![
            Rc::new(small_regex(rng, depth - 1)),
            Rc::new(small_regex(rng, depth - 1)),
        ]),
        2 => Regex::Inter(vec![
            Rc::new(small_regex(rng, depth - 1)),
            Rc::new(small_regex(rng, depth - 1)),
        ]),
        3 => Regex::Star(Rc::new(small_regex(rng, depth - 1))),
        4 => Regex::Plus(Rc::new(small_regex(rng, depth - 1))),
        _ => Regex::Opt(Rc::new(small_regex(rng, depth - 1))),
    }
}

/// A regex seed: the test body rebuilds the regex deterministically from it.
fn regex_seed(r: &mut StdRng) -> u64 {
    r.random_range(0u64..=u64::MAX)
}

/// A string over {a, b} with `lo..=hi` characters.
fn ab_string(rng: &mut StdRng, lo: usize, hi: usize) -> String {
    let n = rng.random_range(lo..=hi);
    (0..n).map(|_| if rng.random_bool(0.5) { 'a' } else { 'b' }).collect()
}

props! {
    cases: 512;

    fn derivatives_agree_with_reference(seed in regex_seed,
                                        s in |r: &mut StdRng| ab_string(r, 0, 6)) {
        let re = small_regex(&mut StdRng::seed_from_u64(seed), 3);
        let chars: Vec<char> = s.chars().collect();
        assert_eq!(
            re.matches(&s),
            reference_matches(&re, &chars),
            "disagreement on {} vs {:?}",
            s,
            re
        );
    }

    fn nullable_iff_matches_empty(seed in regex_seed) {
        let re = small_regex(&mut StdRng::seed_from_u64(seed), 3);
        assert_eq!(re.nullable(), re.matches(""));
    }

    fn derivative_characterization(seed in regex_seed,
                                   s in |r: &mut StdRng| ab_string(r, 1, 5)) {
        // matches(c·w) == derivative(c).matches(w)
        let re = small_regex(&mut StdRng::seed_from_u64(seed), 3);
        let mut chars = s.chars();
        let c = chars.next().expect("non-empty");
        let rest: String = chars.collect();
        assert_eq!(re.matches(&s), re.derivative(c).matches(&rest));
    }

    fn first_chars_is_sound(seed in regex_seed,
                            s in |r: &mut StdRng| ab_string(r, 1, 5)) {
        // If the regex matches s, then s's first char is in first_chars()
        // (when that set is finite).
        let re = small_regex(&mut StdRng::seed_from_u64(seed), 3);
        if re.matches(&s) {
            if let Some(first) = re.first_chars() {
                let c = s.chars().next().expect("non-empty");
                assert!(
                    first.contains(&c),
                    "{c} missing from first_chars of {re:?}"
                );
            }
        }
    }

    fn alphabet_covers_matches(seed in regex_seed,
                               s in |r: &mut StdRng| ab_string(r, 1, 4)) {
        // Every matched string only uses characters from alphabet() —
        // except AllChar/All which report None.
        let re = small_regex(&mut StdRng::seed_from_u64(seed), 3);
        if re.matches(&s) {
            if let Some(alpha) = re.alphabet() {
                for c in s.chars() {
                    assert!(alpha.contains(&c), "{c} outside alphabet of {re:?}");
                }
            }
        }
    }
}
