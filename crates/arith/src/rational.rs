//! Arbitrary-precision rational numbers.
//!
//! [`BigRational`] is an always-normalized fraction of [`BigInt`]s: the
//! denominator is strictly positive and `gcd(num, den) = 1`. It is the value
//! domain for the Real theory and the exact coefficient domain of the
//! simplex solver.
//!
//! # Examples
//!
//! ```
//! use yinyang_arith::BigRational;
//!
//! let a = BigRational::new(1.into(), 3.into());
//! let b = BigRational::new(1.into(), 6.into());
//! assert_eq!((&a + &b).to_string(), "1/2");
//! ```

use crate::bigint::{BigInt, ParseBigIntError};
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};
use std::str::FromStr;

/// An exact rational number `num/den` with `den > 0` and `gcd(num, den) = 1`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BigRational {
    num: BigInt,
    den: BigInt,
}

impl BigRational {
    /// Creates a rational from numerator and denominator, normalizing sign
    /// and common factors.
    ///
    /// # Panics
    ///
    /// Panics if `den` is zero.
    pub fn new(num: BigInt, den: BigInt) -> Self {
        assert!(!den.is_zero(), "BigRational with zero denominator");
        let mut num = num;
        let mut den = den;
        if den.is_negative() {
            num = -num;
            den = -den;
        }
        let g = num.gcd(&den);
        if !g.is_zero() && g != BigInt::one() {
            num = num.div_rem(&g).0;
            den = den.div_rem(&g).0;
        }
        if num.is_zero() {
            den = BigInt::one();
        }
        BigRational { num, den }
    }

    /// The rational `0`.
    pub fn zero() -> Self {
        BigRational { num: BigInt::zero(), den: BigInt::one() }
    }

    /// The rational `1`.
    pub fn one() -> Self {
        BigRational { num: BigInt::one(), den: BigInt::one() }
    }

    /// Builds an integer-valued rational.
    pub fn from_int(v: BigInt) -> Self {
        BigRational { num: v, den: BigInt::one() }
    }

    /// Numerator (sign-carrying, coprime with the denominator).
    pub fn numer(&self) -> &BigInt {
        &self.num
    }

    /// Denominator (always strictly positive).
    pub fn denom(&self) -> &BigInt {
        &self.den
    }

    /// Returns `true` iff the value is zero.
    pub fn is_zero(&self) -> bool {
        self.num.is_zero()
    }

    /// Returns `true` iff strictly positive.
    pub fn is_positive(&self) -> bool {
        self.num.is_positive()
    }

    /// Returns `true` iff strictly negative.
    pub fn is_negative(&self) -> bool {
        self.num.is_negative()
    }

    /// Returns `true` iff the value is an integer.
    pub fn is_integer(&self) -> bool {
        self.den == BigInt::one()
    }

    /// Sign as `-1`, `0`, or `1`.
    pub fn signum(&self) -> i32 {
        self.num.signum()
    }

    /// Absolute value.
    pub fn abs(&self) -> BigRational {
        BigRational { num: self.num.abs(), den: self.den.clone() }
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if the value is zero.
    pub fn recip(&self) -> BigRational {
        assert!(!self.is_zero(), "reciprocal of zero");
        BigRational::new(self.den.clone(), self.num.clone())
    }

    /// Largest integer `<= self`.
    pub fn floor(&self) -> BigInt {
        self.num.div_floor_big(&self.den)
    }

    /// Smallest integer `>= self`.
    pub fn ceil(&self) -> BigInt {
        -(-&self.num).div_floor_big(&self.den)
    }

    /// Approximate `f64` value.
    pub fn to_f64(&self) -> f64 {
        self.num.to_f64() / self.den.to_f64()
    }

    /// Parses an SMT-LIB decimal literal like `"1.5"` or `"0.0"` into an
    /// exact rational.
    ///
    /// # Errors
    ///
    /// Returns an error if `s` is not `digits` or `digits.digits` with an
    /// optional leading sign.
    pub fn from_decimal_str(s: &str) -> Result<Self, ParseBigIntError> {
        match s.split_once('.') {
            None => Ok(BigRational::from_int(s.parse()?)),
            Some((int_part, frac_part)) => {
                if frac_part.is_empty() || !frac_part.bytes().all(|b| b.is_ascii_digit()) {
                    return Err(ParseBigIntError::new("bad fraction digits"));
                }
                let neg = int_part.starts_with('-');
                let int: BigInt = int_part.parse()?;
                let frac: BigInt = frac_part.parse()?;
                let scale = BigInt::from(10i64).pow(frac_part.len() as u32);
                let mag = &int.abs() * &scale + frac;
                let num = if neg { -mag } else { mag };
                Ok(BigRational::new(num, scale))
            }
        }
    }

    /// Renders as an SMT-LIB-friendly decimal if the denominator is a
    /// product of 2s and 5s, otherwise as `(/ num den)` division notation is
    /// left to the printer; this returns `None` in that case.
    pub fn to_decimal_string(&self) -> Option<String> {
        let mut den = self.den.clone();
        let two = BigInt::from(2);
        let five = BigInt::from(5);
        let mut twos = 0u32;
        let mut fives = 0u32;
        while den.rem_euclid_big(&two).is_zero() {
            den = den.div_rem(&two).0;
            twos += 1;
        }
        while den.rem_euclid_big(&five).is_zero() {
            den = den.div_rem(&five).0;
            fives += 1;
        }
        if den != BigInt::one() {
            return None;
        }
        let shift = twos.max(fives);
        let scale = BigInt::from(10i64).pow(shift);
        let scaled = &self.num * &scale.div_rem(&self.den).0;
        let s = scaled.abs().to_string();
        let sign = if self.num.is_negative() { "-" } else { "" };
        if shift == 0 {
            return Some(format!("{sign}{s}.0"));
        }
        let digits = shift as usize;
        let padded = if s.len() <= digits {
            format!("{}{}", "0".repeat(digits + 1 - s.len()), s)
        } else {
            s
        };
        let (ip, fp) = padded.split_at(padded.len() - digits);
        Some(format!("{sign}{ip}.{fp}"))
    }
}

impl Default for BigRational {
    fn default() -> Self {
        BigRational::zero()
    }
}

impl From<i64> for BigRational {
    fn from(v: i64) -> Self {
        BigRational::from_int(BigInt::from(v))
    }
}

impl From<BigInt> for BigRational {
    fn from(v: BigInt) -> Self {
        BigRational::from_int(v)
    }
}

impl FromStr for BigRational {
    type Err = ParseBigIntError;

    /// Parses `"n"`, `"n/d"`, or `"n.d"` forms.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if let Some((n, d)) = s.split_once('/') {
            let num: BigInt = n.trim().parse()?;
            let den: BigInt = d.trim().parse()?;
            if den.is_zero() {
                return Err(ParseBigIntError::new("zero denominator"));
            }
            Ok(BigRational::new(num, den))
        } else {
            BigRational::from_decimal_str(s)
        }
    }
}

impl fmt::Display for BigRational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_integer() {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl fmt::Debug for BigRational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigRational({self})")
    }
}

impl PartialOrd for BigRational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigRational {
    fn cmp(&self, other: &Self) -> Ordering {
        // a/b ? c/d  <=>  a*d ? c*b   (b, d > 0)
        (&self.num * &other.den).cmp(&(&other.num * &self.den))
    }
}

impl Neg for BigRational {
    type Output = BigRational;
    fn neg(self) -> BigRational {
        BigRational { num: -self.num, den: self.den }
    }
}

impl Neg for &BigRational {
    type Output = BigRational;
    fn neg(self) -> BigRational {
        -self.clone()
    }
}

impl Add for &BigRational {
    type Output = BigRational;
    fn add(self, other: &BigRational) -> BigRational {
        BigRational::new(&self.num * &other.den + &other.num * &self.den, &self.den * &other.den)
    }
}

impl Sub for &BigRational {
    type Output = BigRational;
    fn sub(self, other: &BigRational) -> BigRational {
        BigRational::new(&self.num * &other.den - &other.num * &self.den, &self.den * &other.den)
    }
}

impl Mul for &BigRational {
    type Output = BigRational;
    fn mul(self, other: &BigRational) -> BigRational {
        BigRational::new(&self.num * &other.num, &self.den * &other.den)
    }
}

impl Div for &BigRational {
    type Output = BigRational;

    /// # Panics
    ///
    /// Panics if `other` is zero.
    fn div(self, other: &BigRational) -> BigRational {
        assert!(!other.is_zero(), "BigRational division by zero");
        BigRational::new(&self.num * &other.den, &self.den * &other.num)
    }
}

macro_rules! forward_owned_binop {
    ($trait:ident, $method:ident) => {
        impl $trait for BigRational {
            type Output = BigRational;
            fn $method(self, other: BigRational) -> BigRational {
                (&self).$method(&other)
            }
        }
        impl $trait<&BigRational> for BigRational {
            type Output = BigRational;
            fn $method(self, other: &BigRational) -> BigRational {
                (&self).$method(other)
            }
        }
        impl $trait<BigRational> for &BigRational {
            type Output = BigRational;
            fn $method(self, other: BigRational) -> BigRational {
                self.$method(&other)
            }
        }
    };
}

forward_owned_binop!(Add, add);
forward_owned_binop!(Sub, sub);
forward_owned_binop!(Mul, mul);
forward_owned_binop!(Div, div);

impl AddAssign<&BigRational> for BigRational {
    fn add_assign(&mut self, other: &BigRational) {
        *self = &*self + other;
    }
}

impl SubAssign<&BigRational> for BigRational {
    fn sub_assign(&mut self, other: &BigRational) {
        *self = &*self - other;
    }
}

impl MulAssign<&BigRational> for BigRational {
    fn mul_assign(&mut self, other: &BigRational) {
        *self = &*self * other;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(n: i64, d: i64) -> BigRational {
        BigRational::new(n.into(), d.into())
    }

    #[test]
    fn normalization() {
        assert_eq!(q(2, 4), q(1, 2));
        assert_eq!(q(-2, -4), q(1, 2));
        assert_eq!(q(2, -4), q(-1, 2));
        assert_eq!(q(0, 7), BigRational::zero());
        assert_eq!(q(0, -7).denom(), &BigInt::one());
    }

    #[test]
    fn field_arithmetic() {
        assert_eq!(q(1, 2) + q(1, 3), q(5, 6));
        assert_eq!(q(1, 2) - q(1, 3), q(1, 6));
        assert_eq!(q(2, 3) * q(3, 4), q(1, 2));
        assert_eq!(q(1, 2) / q(1, 4), q(2, 1));
        assert_eq!(q(-1, 2) * q(-1, 2), q(1, 4));
    }

    #[test]
    fn ordering() {
        assert!(q(1, 3) < q(1, 2));
        assert!(q(-1, 2) < q(-1, 3));
        assert!(q(7, 7) == q(1, 1));
        assert!(q(-5, 1) < BigRational::zero());
    }

    #[test]
    fn floor_ceil() {
        assert_eq!(q(7, 2).floor(), BigInt::from(3));
        assert_eq!(q(7, 2).ceil(), BigInt::from(4));
        assert_eq!(q(-7, 2).floor(), BigInt::from(-4));
        assert_eq!(q(-7, 2).ceil(), BigInt::from(-3));
        assert_eq!(q(4, 2).floor(), BigInt::from(2));
        assert_eq!(q(4, 2).ceil(), BigInt::from(2));
    }

    #[test]
    fn decimal_parsing() {
        assert_eq!(BigRational::from_decimal_str("1.5").unwrap(), q(3, 2));
        assert_eq!(BigRational::from_decimal_str("-0.25").unwrap(), q(-1, 4));
        assert_eq!(BigRational::from_decimal_str("7").unwrap(), q(7, 1));
        assert_eq!(BigRational::from_decimal_str("0.0").unwrap(), BigRational::zero());
        assert!(BigRational::from_decimal_str("1.").is_err());
        assert!(BigRational::from_decimal_str("1.x").is_err());
    }

    #[test]
    fn decimal_printing() {
        assert_eq!(q(3, 2).to_decimal_string().as_deref(), Some("1.5"));
        assert_eq!(q(-1, 4).to_decimal_string().as_deref(), Some("-0.25"));
        assert_eq!(q(7, 1).to_decimal_string().as_deref(), Some("7.0"));
        assert_eq!(q(1, 3).to_decimal_string(), None);
        assert_eq!(q(1, 10).to_decimal_string().as_deref(), Some("0.1"));
        assert_eq!(q(1, 8).to_decimal_string().as_deref(), Some("0.125"));
    }

    #[test]
    fn recip() {
        assert_eq!(q(2, 3).recip(), q(3, 2));
        assert_eq!(q(-2, 3).recip(), q(-3, 2));
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = BigRational::new(BigInt::one(), BigInt::zero());
    }

    #[test]
    fn parse_fraction_form() {
        assert_eq!("3/6".parse::<BigRational>().unwrap(), q(1, 2));
        assert_eq!("-3/6".parse::<BigRational>().unwrap(), q(-1, 2));
        assert!("1/0".parse::<BigRational>().is_err());
    }
}
