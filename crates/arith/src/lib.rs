//! Exact arbitrary-precision arithmetic for the YinYang SMT-solver stack.
//!
//! SMT solving must be exact: floating point cannot represent the rational
//! pivots of a simplex tableau or the integer constants of SMT-LIB scripts
//! without unsoundness. This crate provides the two value types every other
//! crate in the workspace builds on:
//!
//! * [`BigInt`] — arbitrary-precision signed integers with the SMT-LIB
//!   Euclidean `div`/`mod` semantics.
//! * [`BigRational`] — always-normalized exact fractions.
//!
//! # Examples
//!
//! ```
//! use yinyang_arith::{BigInt, BigRational};
//!
//! let n: BigInt = "123456789123456789123456789".parse()?;
//! assert_eq!((&n * &n).to_string().len(), 53);
//!
//! let half = BigRational::new(1.into(), 2.into());
//! assert_eq!((&half + &half), BigRational::one());
//! # Ok::<(), yinyang_arith::ParseBigIntError>(())
//! ```

#![warn(missing_docs)]

mod bigint;
mod rational;

pub use bigint::{BigInt, ParseBigIntError};
pub use rational::BigRational;
