//! Arbitrary-precision signed integers.
//!
//! [`BigInt`] is a sign-magnitude integer with a little-endian `u32` limb
//! magnitude. It provides exactly the operations the SMT substrate needs:
//! ring arithmetic, ordering, Euclidean division/remainder (the SMT-LIB
//! `div`/`mod` semantics), floor/truncating division, gcd, parity, and
//! decimal conversion.
//!
//! # Examples
//!
//! ```
//! use yinyang_arith::BigInt;
//!
//! let a = BigInt::from(-7);
//! let b = BigInt::from(2);
//! // SMT-LIB Euclidean semantics: remainder is always non-negative.
//! assert_eq!(a.div_euclid_big(&b), BigInt::from(-4));
//! assert_eq!(a.rem_euclid_big(&b), BigInt::from(1));
//! ```

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};
use std::str::FromStr;

/// Sign of a [`BigInt`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Sign {
    /// Strictly negative.
    Minus,
    /// Zero.
    Zero,
    /// Strictly positive.
    Plus,
}

/// An arbitrary-precision signed integer.
///
/// The representation is canonical: zero has an empty limb vector and
/// `Sign::Zero`; non-zero values never have a trailing zero limb.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BigInt {
    sign: Sign,
    /// Little-endian magnitude; empty iff the value is zero.
    mag: Vec<u32>,
}

/// Error returned when parsing a [`BigInt`] or
/// [`BigRational`](crate::BigRational) from a malformed string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBigIntError {
    kind: &'static str,
}

impl fmt::Display for ParseBigIntError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid integer literal: {}", self.kind)
    }
}

impl std::error::Error for ParseBigIntError {}

impl ParseBigIntError {
    pub(crate) fn new(kind: &'static str) -> Self {
        ParseBigIntError { kind }
    }
}

// ---------------------------------------------------------------------------
// Magnitude (unsigned) helpers. All operate on little-endian u32 slices with
// no trailing zeros expected on input; outputs are trimmed.
// ---------------------------------------------------------------------------

fn trim(mag: &mut Vec<u32>) {
    while mag.last() == Some(&0) {
        mag.pop();
    }
}

fn mag_cmp(a: &[u32], b: &[u32]) -> Ordering {
    if a.len() != b.len() {
        return a.len().cmp(&b.len());
    }
    for (x, y) in a.iter().rev().zip(b.iter().rev()) {
        match x.cmp(y) {
            Ordering::Equal => {}
            other => return other,
        }
    }
    Ordering::Equal
}

fn mag_add(a: &[u32], b: &[u32]) -> Vec<u32> {
    let (long, short) = if a.len() >= b.len() { (a, b) } else { (b, a) };
    let mut out = Vec::with_capacity(long.len() + 1);
    let mut carry = 0u64;
    for i in 0..long.len() {
        let s = long[i] as u64 + *short.get(i).unwrap_or(&0) as u64 + carry;
        out.push(s as u32);
        carry = s >> 32;
    }
    if carry != 0 {
        out.push(carry as u32);
    }
    out
}

/// Computes `a - b`; requires `a >= b`.
fn mag_sub(a: &[u32], b: &[u32]) -> Vec<u32> {
    debug_assert!(mag_cmp(a, b) != Ordering::Less);
    let mut out = Vec::with_capacity(a.len());
    let mut borrow = 0i64;
    for i in 0..a.len() {
        let d = a[i] as i64 - *b.get(i).unwrap_or(&0) as i64 - borrow;
        if d < 0 {
            out.push((d + (1i64 << 32)) as u32);
            borrow = 1;
        } else {
            out.push(d as u32);
            borrow = 0;
        }
    }
    debug_assert_eq!(borrow, 0);
    trim(&mut out);
    out
}

fn mag_mul(a: &[u32], b: &[u32]) -> Vec<u32> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let mut out = vec![0u32; a.len() + b.len()];
    for (i, &x) in a.iter().enumerate() {
        if x == 0 {
            continue;
        }
        let mut carry = 0u64;
        for (j, &y) in b.iter().enumerate() {
            let t = out[i + j] as u64 + x as u64 * y as u64 + carry;
            out[i + j] = t as u32;
            carry = t >> 32;
        }
        let mut k = i + b.len();
        while carry != 0 {
            let t = out[k] as u64 + carry;
            out[k] = t as u32;
            carry = t >> 32;
            k += 1;
        }
    }
    trim(&mut out);
    out
}

fn mag_bit(a: &[u32], bit: usize) -> bool {
    let limb = bit / 32;
    limb < a.len() && (a[limb] >> (bit % 32)) & 1 == 1
}

fn mag_bits(a: &[u32]) -> usize {
    match a.last() {
        None => 0,
        Some(&top) => (a.len() - 1) * 32 + (32 - top.leading_zeros() as usize),
    }
}

fn mag_shl1_add_bit(acc: &mut Vec<u32>, bit: bool) {
    let mut carry = bit as u32;
    for limb in acc.iter_mut() {
        let t = ((*limb as u64) << 1) | carry as u64;
        *limb = t as u32;
        carry = (t >> 32) as u32;
    }
    if carry != 0 {
        acc.push(carry);
    }
}

/// Binary long division: returns `(quotient, remainder)` of `a / b`.
///
/// `b` must be non-zero. O(bits(a) * len(b)) — fine for the limb counts this
/// workspace produces (coefficients stay small after rational normalization).
fn mag_divrem(a: &[u32], b: &[u32]) -> (Vec<u32>, Vec<u32>) {
    assert!(!b.is_empty(), "division by zero magnitude");
    if mag_cmp(a, b) == Ordering::Less {
        return (Vec::new(), a.to_vec());
    }
    // Fast path: single-limb divisor.
    if b.len() == 1 {
        let d = b[0] as u64;
        let mut q = vec![0u32; a.len()];
        let mut rem = 0u64;
        for i in (0..a.len()).rev() {
            let cur = (rem << 32) | a[i] as u64;
            q[i] = (cur / d) as u32;
            rem = cur % d;
        }
        trim(&mut q);
        let mut r = vec![rem as u32];
        trim(&mut r);
        return (q, r);
    }
    let nbits = mag_bits(a);
    let mut quot = vec![0u32; a.len()];
    let mut rem: Vec<u32> = Vec::with_capacity(b.len() + 1);
    for bit in (0..nbits).rev() {
        mag_shl1_add_bit(&mut rem, mag_bit(a, bit));
        if mag_cmp(&rem, b) != Ordering::Less {
            rem = mag_sub(&rem, b);
            quot[bit / 32] |= 1 << (bit % 32);
        }
    }
    trim(&mut quot);
    trim(&mut rem);
    (quot, rem)
}

// ---------------------------------------------------------------------------
// BigInt proper
// ---------------------------------------------------------------------------

impl BigInt {
    /// The integer `0`.
    pub fn zero() -> Self {
        BigInt { sign: Sign::Zero, mag: Vec::new() }
    }

    /// The integer `1`.
    pub fn one() -> Self {
        BigInt::from(1)
    }

    /// Returns `true` iff this integer is zero.
    pub fn is_zero(&self) -> bool {
        self.sign == Sign::Zero
    }

    /// Returns `true` iff this integer is strictly positive.
    pub fn is_positive(&self) -> bool {
        self.sign == Sign::Plus
    }

    /// Returns `true` iff this integer is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.sign == Sign::Minus
    }

    /// Returns `true` iff this integer is even.
    pub fn is_even(&self) -> bool {
        self.mag.first().map_or(true, |l| l % 2 == 0)
    }

    /// Sign as `-1`, `0`, or `1`.
    pub fn signum(&self) -> i32 {
        match self.sign {
            Sign::Minus => -1,
            Sign::Zero => 0,
            Sign::Plus => 1,
        }
    }

    /// Absolute value.
    pub fn abs(&self) -> BigInt {
        BigInt {
            sign: if self.sign == Sign::Zero { Sign::Zero } else { Sign::Plus },
            mag: self.mag.clone(),
        }
    }

    fn from_mag(sign: Sign, mag: Vec<u32>) -> BigInt {
        if mag.is_empty() {
            BigInt::zero()
        } else {
            BigInt { sign, mag }
        }
    }

    /// Truncating division and remainder (`quot` rounds toward zero), as a
    /// pair. The remainder has the sign of `self`.
    ///
    /// # Panics
    ///
    /// Panics if `other` is zero.
    pub fn div_rem(&self, other: &BigInt) -> (BigInt, BigInt) {
        assert!(!other.is_zero(), "BigInt division by zero");
        if self.is_zero() {
            return (BigInt::zero(), BigInt::zero());
        }
        let (q, r) = mag_divrem(&self.mag, &other.mag);
        let q_sign = if self.sign == other.sign { Sign::Plus } else { Sign::Minus };
        (BigInt::from_mag(q_sign, q), BigInt::from_mag(self.sign, r))
    }

    /// Euclidean division: the unique `q` with `self = q*other + r` and
    /// `0 <= r < |other|`. This is SMT-LIB's `div`.
    ///
    /// # Panics
    ///
    /// Panics if `other` is zero.
    pub fn div_euclid_big(&self, other: &BigInt) -> BigInt {
        let (q, r) = self.div_rem(other);
        if r.is_negative() {
            if other.is_positive() {
                q - BigInt::one()
            } else {
                q + BigInt::one()
            }
        } else {
            q
        }
    }

    /// Euclidean remainder: always in `[0, |other|)`. This is SMT-LIB's `mod`.
    ///
    /// # Panics
    ///
    /// Panics if `other` is zero.
    pub fn rem_euclid_big(&self, other: &BigInt) -> BigInt {
        let (_, r) = self.div_rem(other);
        if r.is_negative() {
            r + other.abs()
        } else {
            r
        }
    }

    /// Floor division (`q` rounds toward negative infinity).
    ///
    /// # Panics
    ///
    /// Panics if `other` is zero.
    pub fn div_floor_big(&self, other: &BigInt) -> BigInt {
        let (q, r) = self.div_rem(other);
        if !r.is_zero() && (r.is_negative() != other.is_negative()) {
            q - BigInt::one()
        } else {
            q
        }
    }

    /// Greatest common divisor; always non-negative, `gcd(0, 0) = 0`.
    pub fn gcd(&self, other: &BigInt) -> BigInt {
        let mut a = self.abs();
        let mut b = other.abs();
        while !b.is_zero() {
            let r = a.rem_euclid_big(&b);
            a = b;
            b = r;
        }
        a
    }

    /// Raises `self` to a small non-negative power.
    pub fn pow(&self, mut exp: u32) -> BigInt {
        let mut base = self.clone();
        let mut acc = BigInt::one();
        while exp > 0 {
            if exp & 1 == 1 {
                acc = &acc * &base;
            }
            base = &base * &base;
            exp >>= 1;
        }
        acc
    }

    /// Converts to `i64` if the value fits.
    pub fn to_i64(&self) -> Option<i64> {
        if self.mag.len() > 2 {
            return None;
        }
        let mut v: u64 = 0;
        for (i, &limb) in self.mag.iter().enumerate() {
            v |= (limb as u64) << (32 * i);
        }
        match self.sign {
            Sign::Zero => Some(0),
            Sign::Plus => i64::try_from(v).ok(),
            Sign::Minus => {
                if v <= i64::MAX as u64 + 1 {
                    Some((v as i64).wrapping_neg())
                } else {
                    None
                }
            }
        }
    }

    /// Approximate `f64` value (exact when the magnitude fits in 53 bits).
    pub fn to_f64(&self) -> f64 {
        let mut v = 0.0f64;
        for &limb in self.mag.iter().rev() {
            v = v * 4294967296.0 + limb as f64;
        }
        if self.sign == Sign::Minus {
            -v
        } else {
            v
        }
    }
}

impl Default for BigInt {
    fn default() -> Self {
        BigInt::zero()
    }
}

impl From<i64> for BigInt {
    fn from(v: i64) -> Self {
        if v == 0 {
            return BigInt::zero();
        }
        let sign = if v < 0 { Sign::Minus } else { Sign::Plus };
        let m = v.unsigned_abs();
        let mut mag = vec![m as u32, (m >> 32) as u32];
        trim(&mut mag);
        BigInt { sign, mag }
    }
}

impl From<i32> for BigInt {
    fn from(v: i32) -> Self {
        BigInt::from(v as i64)
    }
}

impl From<u64> for BigInt {
    fn from(v: u64) -> Self {
        if v == 0 {
            return BigInt::zero();
        }
        let mut mag = vec![v as u32, (v >> 32) as u32];
        trim(&mut mag);
        BigInt { sign: Sign::Plus, mag }
    }
}

impl From<i128> for BigInt {
    fn from(v: i128) -> Self {
        if v == 0 {
            return BigInt::zero();
        }
        let sign = if v < 0 { Sign::Minus } else { Sign::Plus };
        let m = v.unsigned_abs();
        let mut mag = vec![m as u32, (m >> 32) as u32, (m >> 64) as u32, (m >> 96) as u32];
        trim(&mut mag);
        BigInt { sign, mag }
    }
}

impl FromStr for BigInt {
    type Err = ParseBigIntError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (neg, digits) = match s.strip_prefix('-') {
            Some(rest) => (true, rest),
            None => (false, s.strip_prefix('+').unwrap_or(s)),
        };
        if digits.is_empty() {
            return Err(ParseBigIntError::new("empty"));
        }
        let mut mag: Vec<u32> = Vec::new();
        for ch in digits.chars() {
            let d = ch.to_digit(10).ok_or(ParseBigIntError::new("non-digit"))?;
            // mag = mag * 10 + d
            let mut carry = d as u64;
            for limb in mag.iter_mut() {
                let t = *limb as u64 * 10 + carry;
                *limb = t as u32;
                carry = t >> 32;
            }
            if carry != 0 {
                mag.push(carry as u32);
            }
        }
        trim(&mut mag);
        if mag.is_empty() {
            Ok(BigInt::zero())
        } else {
            Ok(BigInt { sign: if neg { Sign::Minus } else { Sign::Plus }, mag })
        }
    }
}

impl fmt::Display for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.write_str("0");
        }
        // Repeated division by 1e9 to extract decimal chunks.
        let mut mag = self.mag.clone();
        let mut chunks: Vec<u32> = Vec::new();
        while !mag.is_empty() {
            let mut rem = 0u64;
            for i in (0..mag.len()).rev() {
                let cur = (rem << 32) | mag[i] as u64;
                mag[i] = (cur / 1_000_000_000) as u32;
                rem = cur % 1_000_000_000;
            }
            trim(&mut mag);
            chunks.push(rem as u32);
        }
        if self.sign == Sign::Minus {
            f.write_str("-")?;
        }
        let mut it = chunks.iter().rev();
        write!(f, "{}", it.next().unwrap())?;
        for c in it {
            write!(f, "{c:09}")?;
        }
        Ok(())
    }
}

impl fmt::Debug for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigInt({self})")
    }
}

impl PartialOrd for BigInt {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigInt {
    fn cmp(&self, other: &Self) -> Ordering {
        let rank = |s: Sign| match s {
            Sign::Minus => 0,
            Sign::Zero => 1,
            Sign::Plus => 2,
        };
        match rank(self.sign).cmp(&rank(other.sign)) {
            Ordering::Equal => {}
            other_ord => return other_ord,
        }
        match self.sign {
            Sign::Zero => Ordering::Equal,
            Sign::Plus => mag_cmp(&self.mag, &other.mag),
            Sign::Minus => mag_cmp(&other.mag, &self.mag),
        }
    }
}

impl Neg for BigInt {
    type Output = BigInt;
    fn neg(mut self) -> BigInt {
        self.sign = match self.sign {
            Sign::Minus => Sign::Plus,
            Sign::Zero => Sign::Zero,
            Sign::Plus => Sign::Minus,
        };
        self
    }
}

impl Neg for &BigInt {
    type Output = BigInt;
    fn neg(self) -> BigInt {
        -self.clone()
    }
}

impl Add for &BigInt {
    type Output = BigInt;
    fn add(self, other: &BigInt) -> BigInt {
        match (self.sign, other.sign) {
            (Sign::Zero, _) => other.clone(),
            (_, Sign::Zero) => self.clone(),
            (a, b) if a == b => BigInt::from_mag(a, mag_add(&self.mag, &other.mag)),
            _ => match mag_cmp(&self.mag, &other.mag) {
                Ordering::Equal => BigInt::zero(),
                Ordering::Greater => BigInt::from_mag(self.sign, mag_sub(&self.mag, &other.mag)),
                Ordering::Less => BigInt::from_mag(other.sign, mag_sub(&other.mag, &self.mag)),
            },
        }
    }
}

impl Sub for &BigInt {
    type Output = BigInt;
    fn sub(self, other: &BigInt) -> BigInt {
        self + &(-other)
    }
}

impl Mul for &BigInt {
    type Output = BigInt;
    fn mul(self, other: &BigInt) -> BigInt {
        if self.is_zero() || other.is_zero() {
            return BigInt::zero();
        }
        let sign = if self.sign == other.sign { Sign::Plus } else { Sign::Minus };
        BigInt::from_mag(sign, mag_mul(&self.mag, &other.mag))
    }
}

macro_rules! forward_owned_binop {
    ($trait:ident, $method:ident) => {
        impl $trait for BigInt {
            type Output = BigInt;
            fn $method(self, other: BigInt) -> BigInt {
                (&self).$method(&other)
            }
        }
        impl $trait<&BigInt> for BigInt {
            type Output = BigInt;
            fn $method(self, other: &BigInt) -> BigInt {
                (&self).$method(other)
            }
        }
        impl $trait<BigInt> for &BigInt {
            type Output = BigInt;
            fn $method(self, other: BigInt) -> BigInt {
                self.$method(&other)
            }
        }
    };
}

forward_owned_binop!(Add, add);
forward_owned_binop!(Sub, sub);
forward_owned_binop!(Mul, mul);

impl AddAssign<&BigInt> for BigInt {
    fn add_assign(&mut self, other: &BigInt) {
        *self = &*self + other;
    }
}

impl SubAssign<&BigInt> for BigInt {
    fn sub_assign(&mut self, other: &BigInt) {
        *self = &*self - other;
    }
}

impl MulAssign<&BigInt> for BigInt {
    fn mul_assign(&mut self, other: &BigInt) {
        *self = &*self * other;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bi(v: i64) -> BigInt {
        BigInt::from(v)
    }

    #[test]
    fn zero_is_canonical() {
        assert!(bi(0).is_zero());
        assert_eq!(bi(5) - bi(5), BigInt::zero());
        assert_eq!(BigInt::zero().to_string(), "0");
        assert_eq!(-BigInt::zero(), BigInt::zero());
    }

    #[test]
    fn small_arithmetic_matches_i64() {
        let cases = [-100i64, -31, -7, -1, 0, 1, 2, 9, 63, 99, 1 << 40];
        for &a in &cases {
            for &b in &cases {
                assert_eq!(bi(a) + bi(b), bi(a + b), "{a} + {b}");
                assert_eq!(bi(a) - bi(b), bi(a - b), "{a} - {b}");
                assert_eq!(
                    BigInt::from(a as i128) * BigInt::from(b as i128),
                    BigInt::from(a as i128 * b as i128),
                    "{a} * {b}"
                );
                assert_eq!(bi(a).cmp(&bi(b)), a.cmp(&b));
                if b != 0 {
                    let (q, r) = bi(a).div_rem(&bi(b));
                    assert_eq!(q, bi(a / b), "{a} / {b}");
                    assert_eq!(r, bi(a % b), "{a} % {b}");
                    assert_eq!(bi(a).div_euclid_big(&bi(b)), bi(a.div_euclid(b)));
                    assert_eq!(bi(a).rem_euclid_big(&bi(b)), bi(a.rem_euclid(b)));
                }
            }
        }
    }

    #[test]
    fn large_multiplication_crosses_limbs() {
        let a: BigInt = "123456789012345678901234567890".parse().unwrap();
        let b: BigInt = "987654321098765432109876543210".parse().unwrap();
        let p = &a * &b;
        assert_eq!(p.to_string(), "121932631137021795226185032733622923332237463801111263526900");
        let (q, r) = p.div_rem(&a);
        assert_eq!(q, b);
        assert!(r.is_zero());
    }

    #[test]
    fn display_parse_roundtrip() {
        for s in ["0", "1", "-1", "4294967296", "-18446744073709551616", "999999999999999999999"] {
            let v: BigInt = s.parse().unwrap();
            assert_eq!(v.to_string(), s);
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("".parse::<BigInt>().is_err());
        assert!("-".parse::<BigInt>().is_err());
        assert!("12a".parse::<BigInt>().is_err());
    }

    #[test]
    fn parse_accepts_leading_zeros_and_plus() {
        assert_eq!("0007".parse::<BigInt>().unwrap(), bi(7));
        assert_eq!("+7".parse::<BigInt>().unwrap(), bi(7));
        assert_eq!("-000".parse::<BigInt>().unwrap(), BigInt::zero());
    }

    #[test]
    fn gcd_properties() {
        assert_eq!(bi(12).gcd(&bi(18)), bi(6));
        assert_eq!(bi(-12).gcd(&bi(18)), bi(6));
        assert_eq!(bi(0).gcd(&bi(5)), bi(5));
        assert_eq!(bi(0).gcd(&bi(0)), bi(0));
        assert_eq!(bi(17).gcd(&bi(13)), bi(1));
    }

    #[test]
    fn pow_small() {
        assert_eq!(bi(2).pow(10), bi(1024));
        assert_eq!(bi(-3).pow(3), bi(-27));
        assert_eq!(bi(7).pow(0), bi(1));
        assert_eq!(bi(10).pow(30).to_string(), format!("1{}", "0".repeat(30)));
    }

    #[test]
    fn to_i64_bounds() {
        assert_eq!(bi(i64::MAX).to_i64(), Some(i64::MAX));
        assert_eq!(bi(i64::MIN).to_i64(), Some(i64::MIN));
        let big = bi(i64::MAX) + bi(1);
        assert_eq!(big.to_i64(), None);
        assert_eq!((-big).to_i64(), Some(i64::MIN));
        assert_eq!((bi(i64::MIN) - bi(1)).to_i64(), None);
    }

    #[test]
    fn to_f64_reasonable() {
        assert_eq!(bi(0).to_f64(), 0.0);
        assert_eq!(bi(-5).to_f64(), -5.0);
        assert_eq!(bi(1 << 52).to_f64(), (1u64 << 52) as f64);
    }

    #[test]
    fn parity() {
        assert!(bi(0).is_even());
        assert!(bi(2).is_even());
        assert!(!bi(3).is_even());
        assert!(bi(-4).is_even());
    }

    #[test]
    fn div_floor_semantics() {
        assert_eq!(bi(7).div_floor_big(&bi(2)), bi(3));
        assert_eq!(bi(-7).div_floor_big(&bi(2)), bi(-4));
        assert_eq!(bi(7).div_floor_big(&bi(-2)), bi(-4));
        assert_eq!(bi(-7).div_floor_big(&bi(-2)), bi(3));
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let _ = bi(1).div_rem(&bi(0));
    }
}
