//! Property-based tests: BigInt/BigRational agree with i128 reference
//! arithmetic and satisfy ring/field/order laws.

use yinyang_arith::{BigInt, BigRational};
use yinyang_rt::prop::assume;
use yinyang_rt::{props, Rng, StdRng};

fn bi(v: i128) -> BigInt {
    BigInt::from(v)
}

fn tera(r: &mut StdRng) -> i128 {
    r.random_range(-1_000_000_000_000i128..1_000_000_000_000)
}

fn giga(r: &mut StdRng) -> i128 {
    r.random_range(-1_000_000_000i128..1_000_000_000)
}

fn mega(r: &mut StdRng) -> i128 {
    r.random_range(-1_000_000i128..1_000_000)
}

props! {
    fn bigint_add_matches_i128(a in tera, b in tera) {
        assert_eq!(bi(a) + bi(b), bi(a + b));
    }

    fn bigint_mul_matches_i128(a in giga, b in giga) {
        assert_eq!(bi(a) * bi(b), bi(a * b));
    }

    fn bigint_divrem_matches_i128(a in tera, b in mega) {
        assume(b != 0);
        let (q, r) = bi(a).div_rem(&bi(b));
        assert_eq!(q, bi(a / b));
        assert_eq!(r, bi(a % b));
        assert_eq!(bi(a).div_euclid_big(&bi(b)), bi(a.div_euclid(b)));
        assert_eq!(bi(a).rem_euclid_big(&bi(b)), bi(a.rem_euclid(b)));
    }

    fn bigint_euclid_invariant(a in |r: &mut StdRng| r.random_range(i64::MIN..=i64::MAX),
                               b in |r: &mut StdRng| r.random_range(i64::MIN..=i64::MAX)) {
        assume(b != 0);
        let (a, b) = (bi(a as i128), bi(b as i128));
        let q = a.div_euclid_big(&b);
        let r = a.rem_euclid_big(&b);
        assert_eq!(&q * &b + &r, a);
        assert!(!r.is_negative());
        assert!(r < b.abs());
    }

    fn bigint_string_roundtrip(a in |r: &mut StdRng| r.random_range(i128::MIN..=i128::MAX)) {
        let v = bi(a);
        let s = v.to_string();
        assert_eq!(s.parse::<BigInt>().unwrap(), v);
        assert_eq!(s, a.to_string());
    }

    fn bigint_mul_distributes(a in mega, b in mega, c in mega) {
        let (a, b, c) = (bi(a), bi(b), bi(c));
        assert_eq!(&a * &(&b + &c), &a * &b + &a * &c);
    }

    fn bigint_gcd_divides(a in |r: &mut StdRng| r.random_range(i32::MIN..=i32::MAX),
                          b in |r: &mut StdRng| r.random_range(i32::MIN..=i32::MAX)) {
        let (a, b) = (bi(a as i128), bi(b as i128));
        let g = a.gcd(&b);
        if !g.is_zero() {
            assert!(a.rem_euclid_big(&g).is_zero());
            assert!(b.rem_euclid_big(&g).is_zero());
        } else {
            assert!(a.is_zero() && b.is_zero());
        }
    }

    fn rational_field_laws(an in |r: &mut StdRng| r.random_range(-10_000i64..10_000),
                           ad in |r: &mut StdRng| r.random_range(1i64..1000),
                           bn in |r: &mut StdRng| r.random_range(-10_000i64..10_000),
                           bd in |r: &mut StdRng| r.random_range(1i64..1000)) {
        let a = BigRational::new(an.into(), ad.into());
        let b = BigRational::new(bn.into(), bd.into());
        assert_eq!(&a + &b, &b + &a);
        assert_eq!(&a * &b, &b * &a);
        assert_eq!(&(&a + &b) - &b, a.clone());
        if !b.is_zero() {
            assert_eq!(&(&a / &b) * &b, a.clone());
        }
    }

    fn rational_order_total(an in |r: &mut StdRng| r.random_range(-1000i64..1000),
                            ad in |r: &mut StdRng| r.random_range(1i64..100),
                            bn in |r: &mut StdRng| r.random_range(-1000i64..1000),
                            bd in |r: &mut StdRng| r.random_range(1i64..100)) {
        let a = BigRational::new(an.into(), ad.into());
        let b = BigRational::new(bn.into(), bd.into());
        // Compare against tolerance-free cross multiplication.
        let lhs = (an as i128) * (bd as i128);
        let rhs = (bn as i128) * (ad as i128);
        assert_eq!(a.cmp(&b), lhs.cmp(&rhs));
    }

    fn rational_floor_ceil_bracket(n in |r: &mut StdRng| r.random_range(-100_000i64..100_000),
                                   d in |r: &mut StdRng| r.random_range(1i64..1000)) {
        let v = BigRational::new(n.into(), d.into());
        let f = BigRational::from_int(v.floor());
        let c = BigRational::from_int(v.ceil());
        assert!(f <= v && v <= c);
        assert!(&c - &f <= BigRational::one());
    }

    fn rational_decimal_roundtrip(n in |r: &mut StdRng| r.random_range(-100_000i64..100_000),
                                  scale in |r: &mut StdRng| r.random_range(0u32..6)) {
        let den = BigInt::from(10i64).pow(scale);
        let v = BigRational::new(n.into(), den);
        let s = v.to_decimal_string().expect("power-of-ten denominator prints as decimal");
        assert_eq!(BigRational::from_decimal_str(&s).unwrap(), v);
    }
}
