//! Property-based tests: BigInt/BigRational agree with i128 reference
//! arithmetic and satisfy ring/field/order laws.

use proptest::prelude::*;
use yinyang_arith::{BigInt, BigRational};

fn bi(v: i128) -> BigInt {
    BigInt::from(v)
}

proptest! {
    #[test]
    fn bigint_add_matches_i128(a in -1_000_000_000_000i128..1_000_000_000_000, b in -1_000_000_000_000i128..1_000_000_000_000) {
        prop_assert_eq!(bi(a) + bi(b), bi(a + b));
    }

    #[test]
    fn bigint_mul_matches_i128(a in -1_000_000_000i128..1_000_000_000, b in -1_000_000_000i128..1_000_000_000) {
        prop_assert_eq!(bi(a) * bi(b), bi(a * b));
    }

    #[test]
    fn bigint_divrem_matches_i128(a in -1_000_000_000_000i128..1_000_000_000_000, b in -1_000_000i128..1_000_000) {
        prop_assume!(b != 0);
        let (q, r) = bi(a).div_rem(&bi(b));
        prop_assert_eq!(q, bi(a / b));
        prop_assert_eq!(r, bi(a % b));
        prop_assert_eq!(bi(a).div_euclid_big(&bi(b)), bi(a.div_euclid(b)));
        prop_assert_eq!(bi(a).rem_euclid_big(&bi(b)), bi(a.rem_euclid(b)));
    }

    #[test]
    fn bigint_euclid_invariant(a in any::<i64>(), b in any::<i64>()) {
        prop_assume!(b != 0);
        let (a, b) = (bi(a as i128), bi(b as i128));
        let q = a.div_euclid_big(&b);
        let r = a.rem_euclid_big(&b);
        prop_assert_eq!(&q * &b + &r, a);
        prop_assert!(!r.is_negative());
        prop_assert!(r < b.abs());
    }

    #[test]
    fn bigint_string_roundtrip(a in any::<i128>()) {
        let v = bi(a);
        let s = v.to_string();
        prop_assert_eq!(s.parse::<BigInt>().unwrap(), v);
        prop_assert_eq!(s, a.to_string());
    }

    #[test]
    fn bigint_mul_distributes(a in -1_000_000i128..1_000_000, b in -1_000_000i128..1_000_000, c in -1_000_000i128..1_000_000) {
        let (a, b, c) = (bi(a), bi(b), bi(c));
        prop_assert_eq!(&a * &(&b + &c), &a * &b + &a * &c);
    }

    #[test]
    fn bigint_gcd_divides(a in any::<i32>(), b in any::<i32>()) {
        let (a, b) = (bi(a as i128), bi(b as i128));
        let g = a.gcd(&b);
        if !g.is_zero() {
            prop_assert!(a.rem_euclid_big(&g).is_zero());
            prop_assert!(b.rem_euclid_big(&g).is_zero());
        } else {
            prop_assert!(a.is_zero() && b.is_zero());
        }
    }

    #[test]
    fn rational_field_laws(
        an in -10_000i64..10_000, ad in 1i64..1000,
        bn in -10_000i64..10_000, bd in 1i64..1000,
    ) {
        let a = BigRational::new(an.into(), ad.into());
        let b = BigRational::new(bn.into(), bd.into());
        prop_assert_eq!(&a + &b, &b + &a);
        prop_assert_eq!(&a * &b, &b * &a);
        prop_assert_eq!(&(&a + &b) - &b, a.clone());
        if !b.is_zero() {
            prop_assert_eq!(&(&a / &b) * &b, a.clone());
        }
    }

    #[test]
    fn rational_order_total(
        an in -1000i64..1000, ad in 1i64..100,
        bn in -1000i64..1000, bd in 1i64..100,
    ) {
        let a = BigRational::new(an.into(), ad.into());
        let b = BigRational::new(bn.into(), bd.into());
        // Compare against f64 with tolerance-free cross multiplication.
        let lhs = (an as i128) * (bd as i128);
        let rhs = (bn as i128) * (ad as i128);
        prop_assert_eq!(a.cmp(&b), lhs.cmp(&rhs));
    }

    #[test]
    fn rational_floor_ceil_bracket(n in -100_000i64..100_000, d in 1i64..1000) {
        let v = BigRational::new(n.into(), d.into());
        let f = BigRational::from_int(v.floor());
        let c = BigRational::from_int(v.ceil());
        prop_assert!(f <= v && v <= c);
        prop_assert!(&c - &f <= BigRational::one());
    }

    #[test]
    fn rational_decimal_roundtrip(n in -100_000i64..100_000, scale in 0u32..6) {
        let den = BigInt::from(10i64).pow(scale);
        let v = BigRational::new(n.into(), den);
        let s = v.to_decimal_string().expect("power-of-ten denominator prints as decimal");
        prop_assert_eq!(BigRational::from_decimal_str(&s).unwrap(), v);
    }
}
