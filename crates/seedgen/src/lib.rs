//! Seed-formula generators with ground-truth satisfiability.
//!
//! The paper seeds YinYang with 75,097 pre-classified formulas from the
//! SMT-LIB benchmarks and StringFuzz (Fig. 7). Offline, we substitute
//! *generated* seeds whose satisfiability is known **by construction**:
//!
//! * satisfiable seeds are generated model-first — a random model is fixed
//!   and every assertion is oriented to hold under it (verified with the
//!   exact evaluator);
//! * unsatisfiable seeds are satisfiable padding plus an injected
//!   contradiction core ([`contradiction`]).
//!
//! [`profile::fig7_profile`] reproduces the Fig. 7 benchmark inventory at
//! 1:100 scale.
//!
//! # Examples
//!
//! ```
//! use yinyang_core::Oracle;
//! use yinyang_seedgen::SeedGenerator;
//! use yinyang_smtlib::Logic;
//!
//! let mut rng = yinyang_rt::StdRng::seed_from_u64(0);
//! let generator = SeedGenerator::new(Logic::QfLia);
//! let seed = generator.generate(&mut rng, Oracle::Sat);
//! assert_eq!(seed.oracle, Oracle::Sat);
//! assert!(seed.script.to_string().contains("(set-logic QF_LIA)"));
//! ```

#![warn(missing_docs)]

pub mod contradiction;
pub mod profile;
pub mod terms;

use contradiction::contradiction_core;
pub use terms::Shape;
use terms::{bool_formula, quantifier_wrap, stringfuzz_concat, GenCtx};
use yinyang_core::Oracle;
use yinyang_rt::Rng;
use yinyang_smtlib::{Logic, Model, Script, Term, Value, ZeroDivPolicy};

/// A generated seed with its ground truth.
#[derive(Debug, Clone)]
pub struct Seed {
    /// The SMT-LIB script (declarations + assertions + `check-sat`).
    pub script: Script,
    /// Ground-truth satisfiability.
    pub oracle: Oracle,
    /// The witnessing model for satisfiable seeds.
    pub model: Option<Model>,
    /// The logic the seed belongs to.
    pub logic: Logic,
}

/// Generator for one logic.
#[derive(Debug, Clone)]
pub struct SeedGenerator {
    logic: Logic,
    shape: Shape,
    /// StringFuzz flavor: deep concat chains (used by the Fig. 7
    /// `StringFuzz` benchmark row).
    stringfuzz: bool,
}

impl SeedGenerator {
    /// A generator with default shape.
    pub fn new(logic: Logic) -> Self {
        SeedGenerator { logic, shape: Shape::default(), stringfuzz: false }
    }

    /// A generator with an explicit shape.
    pub fn with_shape(logic: Logic, shape: Shape) -> Self {
        SeedGenerator { logic, shape, stringfuzz: false }
    }

    /// A StringFuzz-flavored generator (QF_S with deep concatenations).
    pub fn stringfuzz() -> Self {
        SeedGenerator { logic: Logic::QfS, shape: Shape::default(), stringfuzz: true }
    }

    /// The target logic.
    pub fn logic(&self) -> Logic {
        self.logic
    }

    /// Generates one seed of the requested satisfiability.
    pub fn generate(&self, rng: &mut impl Rng, oracle: Oracle) -> Seed {
        match oracle {
            Oracle::Sat => self.generate_sat(rng),
            Oracle::Unsat => self.generate_unsat(rng),
        }
    }

    /// Generates a satisfiable seed (with its witnessing model).
    pub fn generate_sat(&self, rng: &mut impl Rng) -> Seed {
        let ctx = GenCtx::sample(rng, self.logic, &self.shape);
        let mut asserts = Vec::new();
        for _ in 0..self.shape.num_asserts {
            asserts.push(self.true_assertion(rng, &ctx));
        }
        if self.stringfuzz {
            // One deep concat equation evaluated against the model.
            let chain = stringfuzz_concat(rng, &ctx);
            if let Ok(v) = ctx.model.eval(&chain) {
                asserts.push(Term::eq(chain, v.to_term()));
            }
        }
        let script = Script::check_sat_script(self.logic.name(), ctx.declarations(), asserts);
        Seed { script, oracle: Oracle::Sat, model: Some(ctx.model), logic: self.logic }
    }

    /// Generates an unsatisfiable seed.
    pub fn generate_unsat(&self, rng: &mut impl Rng) -> Seed {
        let ctx = GenCtx::sample(rng, self.logic, &self.shape);
        let mut asserts = Vec::new();
        // Satisfiable padding keeps the formula realistic.
        for _ in 0..self.shape.num_asserts.saturating_sub(1) {
            asserts.push(self.true_assertion(rng, &ctx));
        }
        let core_at = rng.random_range(0..=asserts.len());
        let mut core = contradiction_core(rng, &ctx);
        if !self.logic.is_quantifier_free() && rng.random_bool(0.5) {
            core = core
                .into_iter()
                .map(|c| if rng.random_bool(0.4) { quantifier_wrap(rng, &ctx, c) } else { c })
                .collect();
        }
        for (i, c) in core.into_iter().enumerate() {
            asserts.insert(core_at + i, c);
        }
        let script = Script::check_sat_script(self.logic.name(), ctx.declarations(), asserts);
        Seed { script, oracle: Oracle::Unsat, model: None, logic: self.logic }
    }

    /// One assertion that is true under the context model (retrying with
    /// fresh candidates on evaluation errors such as division by zero).
    fn true_assertion(&self, rng: &mut impl Rng, ctx: &GenCtx) -> Term {
        for attempt in 0..24 {
            let depth = if attempt > 12 { 1 } else { 3 };
            let f = if self.stringfuzz {
                terms::atom(rng, ctx, depth)
            } else {
                bool_formula(rng, ctx, depth)
            };
            match ctx.model.eval_with(&f, ZeroDivPolicy::Error) {
                Ok(Value::Bool(true)) => return self.maybe_quantify(rng, ctx, f),
                Ok(Value::Bool(false)) => return self.maybe_quantify(rng, ctx, Term::not(f)),
                _ => continue,
            }
        }
        // Fallback: a definitional truth from the model.
        let (v, value) = ctx
            .model
            .iter()
            .next()
            .map(|(v, val)| (v.clone(), val.clone()))
            .expect("contexts declare at least one variable");
        Term::eq(Term::var(v), value.to_term())
    }

    fn maybe_quantify(&self, rng: &mut impl Rng, ctx: &GenCtx, t: Term) -> Term {
        if !self.logic.is_quantifier_free() && rng.random_bool(0.5) {
            quantifier_wrap(rng, ctx, t)
        } else {
            t
        }
    }
}

/// Generates a pool of seeds: `sat_count` satisfiable and `unsat_count`
/// unsatisfiable.
pub fn generate_pool(
    rng: &mut impl Rng,
    generator: &SeedGenerator,
    sat_count: usize,
    unsat_count: usize,
) -> Vec<Seed> {
    let mut out = Vec::with_capacity(sat_count + unsat_count);
    for _ in 0..sat_count {
        out.push(generator.generate_sat(rng));
    }
    for _ in 0..unsat_count {
        out.push(generator.generate_unsat(rng));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use yinyang_rt::StdRng;
    use yinyang_smtlib::check_script;

    #[test]
    fn sat_seeds_verified_by_their_model() {
        let mut rng = StdRng::seed_from_u64(1);
        for logic in Logic::ALL {
            let generator = SeedGenerator::new(logic);
            for i in 0..20 {
                let seed = generator.generate_sat(&mut rng);
                check_script(&seed.script)
                    .unwrap_or_else(|e| panic!("{logic} seed {i}: {e}\n{}", seed.script));
                let model = seed.model.as_ref().expect("sat seeds carry models");
                for a in seed.script.asserts() {
                    if a.has_quantifier() {
                        continue; // wrappers are checked by the solver tests
                    }
                    assert_eq!(
                        model.eval_with(&a, ZeroDivPolicy::Error).ok(),
                        Some(Value::Bool(true)),
                        "{logic} seed {i}: assert {a} not satisfied"
                    );
                }
            }
        }
    }

    #[test]
    fn unsat_seeds_are_well_sorted() {
        let mut rng = StdRng::seed_from_u64(2);
        for logic in Logic::ALL {
            let generator = SeedGenerator::new(logic);
            for _ in 0..20 {
                let seed = generator.generate_unsat(&mut rng);
                check_script(&seed.script).unwrap();
                assert_eq!(seed.oracle, Oracle::Unsat);
                assert!(seed.model.is_none());
            }
        }
    }

    #[test]
    fn quantified_logics_produce_quantifiers() {
        let mut rng = StdRng::seed_from_u64(3);
        let generator = SeedGenerator::new(Logic::Nra);
        let mut saw_quant = false;
        for _ in 0..30 {
            let seed = generator.generate_sat(&mut rng);
            if seed.script.asserts().iter().any(Term::has_quantifier) {
                saw_quant = true;
                break;
            }
        }
        assert!(saw_quant, "NRA seeds should sometimes carry quantifiers");
    }

    #[test]
    fn quantifier_free_logics_do_not() {
        let mut rng = StdRng::seed_from_u64(4);
        for logic in [Logic::QfLia, Logic::QfNra, Logic::QfS, Logic::QfSlia] {
            let generator = SeedGenerator::new(logic);
            for _ in 0..20 {
                let seed = generator.generate(&mut rng, Oracle::Sat);
                assert!(
                    !seed.script.asserts().iter().any(Term::has_quantifier),
                    "{logic} produced a quantifier"
                );
            }
        }
    }

    #[test]
    fn stringfuzz_flavor_has_concat_chains() {
        let mut rng = StdRng::seed_from_u64(5);
        let generator = SeedGenerator::stringfuzz();
        let mut saw_chain = false;
        for _ in 0..10 {
            let seed = generator.generate_sat(&mut rng);
            if seed.script.to_string().matches("str.++").count() >= 1 {
                saw_chain = true;
            }
        }
        assert!(saw_chain);
    }

    #[test]
    fn pool_counts() {
        let mut rng = StdRng::seed_from_u64(6);
        let generator = SeedGenerator::new(Logic::QfLia);
        let pool = generate_pool(&mut rng, &generator, 5, 7);
        assert_eq!(pool.len(), 12);
        assert_eq!(pool.iter().filter(|s| s.oracle == Oracle::Sat).count(), 5);
        assert_eq!(pool.iter().filter(|s| s.oracle == Oracle::Unsat).count(), 7);
    }

    #[test]
    fn seeds_parse_back() {
        let mut rng = StdRng::seed_from_u64(7);
        for logic in [Logic::QfNra, Logic::QfSlia] {
            let generator = SeedGenerator::new(logic);
            for _ in 0..10 {
                let seed = generator.generate(&mut rng, Oracle::Unsat);
                let text = seed.script.to_string();
                let reparsed =
                    yinyang_smtlib::parse_script(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
                assert_eq!(reparsed, seed.script);
            }
        }
    }
}
