//! Contradiction cores for unsatisfiable seed generation.
//!
//! An unsatisfiable seed is built as *satisfiable padding* plus an injected
//! contradiction core. Each core is unsatisfiable on its own (so the whole
//! conjunction is too, regardless of the padding), and is drawn from the
//! same shapes the paper's unsat benchmarks exhibit — including φ3's
//! "equivalent-but-syntactically-different" pattern from Fig. 4.

use crate::terms::{arith_term, string_term, GenCtx};
use yinyang_rt::Rng;
use yinyang_smtlib::{Op, Sort, Term};

/// Produces one unsatisfiable conjunction (as a list of assertions) over
/// the context's variables.
pub fn contradiction_core(rng: &mut impl Rng, ctx: &GenCtx) -> Vec<Term> {
    if ctx.logic.has_strings() {
        string_core(rng, ctx)
    } else {
        arith_core(rng, ctx)
    }
}

fn arith_core(rng: &mut impl Rng, ctx: &GenCtx) -> Vec<Term> {
    let t = arith_term(rng, ctx, 2);
    match rng.random_range(0..5) {
        0 => {
            // t > c ∧ t < c.
            let c = small_const(rng, ctx);
            vec![Term::gt(t.clone(), c.clone()), Term::lt(t, c)]
        }
        1 => {
            // t = c1 ∧ t = c2 with c1 ≠ c2.
            let (c1, c2) = distinct_consts(rng, ctx);
            vec![Term::eq(t.clone(), c1), Term::eq(t, c2)]
        }
        2 => {
            // The φ3 pattern: ((c1 + t) + c2) ≠ ((c1 + c2) + t).
            let (a, b) = (rng.random_range(1i64..=9), rng.random_range(1i64..=9));
            let (ca, cb, cab) = if ctx.arith_sort() == Sort::Real {
                (Term::real_frac(a, 1), Term::real_frac(b, 1), Term::real_frac(a + b, 1))
            } else {
                (Term::int(a), Term::int(b), Term::int(a + b))
            };
            vec![Term::not(Term::eq(
                Term::add(vec![Term::add(vec![ca, t.clone()]), cb]),
                Term::add(vec![cab, t]),
            ))]
        }
        3 => {
            // Cyclic ordering: t1 < t2 ∧ t2 < t1.
            let t2 = arith_term(rng, ctx, 2);
            vec![Term::lt(t.clone(), t2.clone()), Term::lt(t2, t)]
        }
        _ => {
            // Strict self-comparison through a sum: t + c > t + c (flipped).
            let c = small_const(rng, ctx);
            let lhs = Term::add(vec![t.clone(), c.clone()]);
            vec![Term::gt(lhs.clone(), lhs)]
        }
    }
}

fn string_core(rng: &mut impl Rng, ctx: &GenCtx) -> Vec<Term> {
    let s = string_term(rng, ctx, 1);
    match rng.random_range(0..5) {
        0 => {
            // Conflicting lengths.
            let l1 = rng.random_range(0i64..4);
            let l2 = l1 + rng.random_range(1i64..4);
            vec![
                Term::eq(Term::str_len(s.clone()), Term::int(l1)),
                Term::eq(Term::str_len(s), Term::int(l2)),
            ]
        }
        1 => {
            // Membership in (cc)* with odd length (the Fig. 13a flavor).
            let c = ["aa", "ab", "ba"][rng.random_range(0..3usize)];
            let re = Term::app(Op::ReStar, vec![Term::app(Op::StrToRe, vec![Term::str_lit(c)])]);
            vec![
                Term::app(Op::StrInRe, vec![s.clone(), re]),
                Term::eq(Term::str_len(s), Term::int(2 * rng.random_range(0i64..3) + 1)),
            ]
        }
        2 => {
            // Distinct constants.
            vec![Term::eq(s.clone(), Term::str_lit("a")), Term::eq(s, Term::str_lit("bb"))]
        }
        3 => {
            // prefix longer than the string.
            vec![
                Term::app(Op::StrPrefixOf, vec![Term::str_lit("abc"), s.clone()]),
                Term::lt(Term::str_len(s), Term::int(3)),
            ]
        }
        _ => {
            // to_int of a non-digit constant forced non-negative.
            vec![
                Term::eq(s.clone(), Term::str_lit("ab")),
                Term::ge(Term::app(Op::StrToInt, vec![s]), Term::int(0)),
            ]
        }
    }
}

fn small_const(rng: &mut impl Rng, ctx: &GenCtx) -> Term {
    if ctx.arith_sort() == Sort::Real {
        Term::real_frac(rng.random_range(-6i64..=6), rng.random_range(1i64..=3))
    } else {
        Term::int(rng.random_range(-6i64..=6))
    }
}

fn distinct_consts(rng: &mut impl Rng, ctx: &GenCtx) -> (Term, Term) {
    let a = rng.random_range(-6i64..=6);
    let b = a + rng.random_range(1i64..=5);
    if ctx.arith_sort() == Sort::Real {
        (Term::real_frac(a, 1), Term::real_frac(b, 1))
    } else {
        (Term::int(a), Term::int(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::terms::Shape;
    use yinyang_rt::StdRng;
    use yinyang_smtlib::{check_script, Logic, Script};

    /// Every core must be well-sorted and (for the decidable arithmetic
    /// cores) refutable by the reference solver.
    #[test]
    fn cores_are_well_sorted() {
        let mut rng = StdRng::seed_from_u64(1);
        for logic in
            [Logic::QfLia, Logic::QfLra, Logic::QfNia, Logic::QfNra, Logic::QfS, Logic::QfSlia]
        {
            for _ in 0..30 {
                let ctx = GenCtx::sample(&mut rng, logic, &Shape::default());
                let core = contradiction_core(&mut rng, &ctx);
                assert!(!core.is_empty());
                let script =
                    Script::check_sat_script(logic.name(), ctx.declarations(), core.clone());
                check_script(&script)
                    .unwrap_or_else(|e| panic!("{logic}: ill-sorted core {core:?}: {e}"));
            }
        }
    }

    /// No model can satisfy a contradiction core: spot-check by evaluating
    /// under the context's own model — at least one core assert must be
    /// false or unevaluable.
    #[test]
    fn cores_refute_their_own_model() {
        let mut rng = StdRng::seed_from_u64(2);
        for logic in [Logic::QfLia, Logic::QfLra, Logic::QfS] {
            for _ in 0..50 {
                let ctx = GenCtx::sample(&mut rng, logic, &Shape::default());
                let core = contradiction_core(&mut rng, &ctx);
                let all_true = core.iter().all(|a| {
                    matches!(
                        ctx.model.eval_with(a, yinyang_smtlib::ZeroDivPolicy::Zero),
                        Ok(yinyang_smtlib::Value::Bool(true))
                    )
                });
                assert!(!all_true, "{logic}: core satisfied by a model: {core:?}");
            }
        }
    }
}
