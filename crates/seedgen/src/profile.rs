//! The Fig. 7 benchmark profile: which seed sets the campaign uses, with
//! the paper's per-logic formula counts (scaled 1:100 for laptop budgets).

use crate::{generate_pool, Seed, SeedGenerator};
use yinyang_rt::Rng;
use yinyang_smtlib::Logic;

/// One row of the Fig. 7 table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkRow {
    /// Display name (`"QF_SLIA"`, `"StringFuzz"`, ...).
    pub name: &'static str,
    /// The underlying logic.
    pub logic: Logic,
    /// StringFuzz-flavored generation?
    pub stringfuzz: bool,
    /// Unsatisfiable seed count (paper scale).
    pub unsat: usize,
    /// Satisfiable seed count (paper scale).
    pub sat: usize,
}

impl BenchmarkRow {
    /// Total formula count at paper scale.
    pub fn total(&self) -> usize {
        self.sat + self.unsat
    }
}

/// The paper's Fig. 7 inventory (paper-scale counts).
pub fn fig7_profile() -> Vec<BenchmarkRow> {
    vec![
        BenchmarkRow { name: "LIA", logic: Logic::Lia, stringfuzz: false, unsat: 203, sat: 139 },
        BenchmarkRow { name: "LRA", logic: Logic::Lra, stringfuzz: false, unsat: 1316, sat: 714 },
        BenchmarkRow { name: "NRA", logic: Logic::Nra, stringfuzz: false, unsat: 3798, sat: 0 },
        BenchmarkRow {
            name: "QF_LIA",
            logic: Logic::QfLia,
            stringfuzz: false,
            unsat: 1191,
            sat: 1318,
        },
        BenchmarkRow {
            name: "QF_LRA",
            logic: Logic::QfLra,
            stringfuzz: false,
            unsat: 384,
            sat: 522,
        },
        BenchmarkRow {
            name: "QF_NRA",
            logic: Logic::QfNra,
            stringfuzz: false,
            unsat: 4660,
            sat: 4751,
        },
        BenchmarkRow {
            name: "QF_SLIA",
            logic: Logic::QfSlia,
            stringfuzz: false,
            unsat: 5492,
            sat: 22657,
        },
        BenchmarkRow {
            name: "QF_S",
            logic: Logic::QfS,
            stringfuzz: false,
            unsat: 6390,
            sat: 12561,
        },
        BenchmarkRow {
            name: "StringFuzz",
            logic: Logic::QfS,
            stringfuzz: true,
            unsat: 4903,
            sat: 4098,
        },
    ]
}

/// Scales a paper count down by `scale` (minimum 1 unless the paper count
/// is zero — NRA has no satisfiable seeds).
pub fn scaled(count: usize, scale: usize) -> usize {
    if count == 0 {
        0
    } else {
        (count / scale).max(1)
    }
}

/// Generates the seed pool for one benchmark row at `1:scale`.
pub fn generate_row(rng: &mut impl Rng, row: &BenchmarkRow, scale: usize) -> Vec<Seed> {
    let generator =
        if row.stringfuzz { SeedGenerator::stringfuzz() } else { SeedGenerator::new(row.logic) };
    generate_pool(rng, &generator, scaled(row.sat, scale), scaled(row.unsat, scale))
}

#[cfg(test)]
mod tests {
    use super::*;
    use yinyang_core::Oracle;
    use yinyang_rt::StdRng;

    #[test]
    fn profile_matches_paper_totals() {
        let rows = fig7_profile();
        assert_eq!(rows.len(), 9);
        let total: usize = rows.iter().map(BenchmarkRow::total).sum();
        // 75,097 seed formulas: 46,760 sat + 28,337 unsat (Section 4.1).
        assert_eq!(total, 75_097);
        assert_eq!(rows.iter().map(|r| r.sat).sum::<usize>(), 46_760);
        assert_eq!(rows.iter().map(|r| r.unsat).sum::<usize>(), 28_337);
    }

    #[test]
    fn nra_has_no_sat_seeds() {
        let rows = fig7_profile();
        let nra = rows.iter().find(|r| r.name == "NRA").unwrap();
        assert_eq!(nra.sat, 0);
        assert_eq!(scaled(nra.sat, 100), 0);
    }

    #[test]
    fn scaling_rounds_up_to_one() {
        assert_eq!(scaled(139, 100), 1);
        assert_eq!(scaled(22657, 100), 226);
        assert_eq!(scaled(0, 100), 0);
    }

    #[test]
    fn generate_row_respects_counts() {
        let mut rng = StdRng::seed_from_u64(1);
        let rows = fig7_profile();
        let lia = rows.iter().find(|r| r.name == "LIA").unwrap();
        let seeds = generate_row(&mut rng, lia, 100);
        let sat = seeds.iter().filter(|s| s.oracle == Oracle::Sat).count();
        let unsat = seeds.iter().filter(|s| s.oracle == Oracle::Unsat).count();
        assert_eq!(sat, scaled(lia.sat, 100));
        assert_eq!(unsat, scaled(lia.unsat, 100));
    }
}
