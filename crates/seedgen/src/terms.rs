//! Random term builders, parameterized by logic and guided by a model.
//!
//! The generators are *model-first*: a random model is fixed up front and
//! every generated assertion is oriented (possibly negated) so that it
//! evaluates to `true` under that model — giving satisfiability by
//! construction, the property the paper gets from pre-classified SMT-LIB
//! benchmarks.

use std::rc::Rc;
use yinyang_arith::{BigInt, BigRational};
use yinyang_rt::Rng;
use yinyang_smtlib::{Logic, Model, Op, Sort, Symbol, Term, Value};

/// Shape parameters for generated formulas.
#[derive(Debug, Clone)]
pub struct Shape {
    /// Number of variables of the primary sort.
    pub num_vars: usize,
    /// Number of assertions.
    pub num_asserts: usize,
    /// Maximum term depth.
    pub max_depth: usize,
    /// Probability of boolean helper variables appearing.
    pub bool_var_prob: f64,
}

impl Default for Shape {
    fn default() -> Self {
        Shape { num_vars: 3, num_asserts: 4, max_depth: 3, bool_var_prob: 0.5 }
    }
}

/// A generation context: the fixed model plus variable inventory.
pub struct GenCtx {
    /// Target logic.
    pub logic: Logic,
    /// The model every assertion must satisfy.
    pub model: Model,
    /// Arithmetic variables (Int or Real per logic).
    pub arith_vars: Vec<Symbol>,
    /// String variables (string logics only).
    pub string_vars: Vec<Symbol>,
    /// Boolean variables.
    pub bool_vars: Vec<Symbol>,
}

impl GenCtx {
    /// Samples a fresh context: variables with random values.
    pub fn sample(rng: &mut impl Rng, logic: Logic, shape: &Shape) -> GenCtx {
        let mut model = Model::new();
        let mut arith_vars = Vec::new();
        let mut string_vars = Vec::new();
        let mut bool_vars = Vec::new();
        let arith_sort = if logic.is_real() { Sort::Real } else { Sort::Int };
        if logic.has_strings() {
            for i in 0..shape.num_vars {
                let v = Symbol::new(format!("s{i}"));
                model.set(v.clone(), Value::Str(random_string(rng)));
                string_vars.push(v);
            }
            if logic == Logic::QfSlia {
                for i in 0..2 {
                    let v = Symbol::new(format!("n{i}"));
                    model.set(v.clone(), Value::Int(BigInt::from(rng.random_range(-6i64..=9))));
                    arith_vars.push(v);
                }
            }
        } else {
            for i in 0..shape.num_vars {
                let v = Symbol::new(format!("v{i}"));
                let value = if arith_sort == Sort::Real {
                    Value::Real(BigRational::new(
                        rng.random_range(-12i64..=12).into(),
                        rng.random_range(1i64..=4).into(),
                    ))
                } else {
                    Value::Int(BigInt::from(rng.random_range(-9i64..=9)))
                };
                model.set(v.clone(), value);
                arith_vars.push(v);
            }
        }
        if rng.random_bool(shape.bool_var_prob) {
            for i in 0..2 {
                let v = Symbol::new(format!("p{i}"));
                model.set(v.clone(), Value::Bool(rng.random_bool(0.5)));
                bool_vars.push(v);
            }
        }
        GenCtx { logic, model, arith_vars, string_vars, bool_vars }
    }

    /// The sort of arithmetic terms in this logic.
    pub fn arith_sort(&self) -> Sort {
        if self.logic.is_real() {
            Sort::Real
        } else {
            Sort::Int
        }
    }

    /// Declarations for the sampled variables.
    pub fn declarations(&self) -> Vec<(Symbol, Sort)> {
        let mut out = Vec::new();
        for v in &self.arith_vars {
            out.push((v.clone(), self.arith_sort_of(v)));
        }
        for v in &self.string_vars {
            out.push((v.clone(), Sort::String));
        }
        for v in &self.bool_vars {
            out.push((v.clone(), Sort::Bool));
        }
        out
    }

    fn arith_sort_of(&self, _v: &Symbol) -> Sort {
        if self.logic.has_strings() {
            Sort::Int // QF_SLIA integer side
        } else {
            self.arith_sort()
        }
    }
}

fn random_string(rng: &mut impl Rng) -> String {
    let alphabet = ['a', 'b', 'c', '0', '1'];
    let len = rng.random_range(0..=4);
    (0..len).map(|_| alphabet[rng.random_range(0..alphabet.len())]).collect()
}

/// A random arithmetic term of the context's sort.
pub fn arith_term(rng: &mut impl Rng, ctx: &GenCtx, depth: usize) -> Term {
    let leaf = depth == 0 || rng.random_bool(0.35);
    if leaf {
        if !ctx.arith_vars.is_empty() && rng.random_bool(0.7) {
            let v = &ctx.arith_vars[rng.random_range(0..ctx.arith_vars.len())];
            return Term::var(v.clone());
        }
        return arith_const(rng, ctx);
    }
    let nonlinear = ctx.logic.is_nonlinear();
    let choice = rng.random_range(0..if nonlinear { 6 } else { 4 });
    match choice {
        0 => Term::add(vec![arith_term(rng, ctx, depth - 1), arith_term(rng, ctx, depth - 1)]),
        1 => Term::sub(arith_term(rng, ctx, depth - 1), arith_term(rng, ctx, depth - 1)),
        2 => Term::neg(arith_term(rng, ctx, depth - 1)),
        3 => {
            // Linear multiplication: constant coefficient.
            Term::mul(vec![arith_const(rng, ctx), arith_term(rng, ctx, depth - 1)])
        }
        4 => Term::mul(vec![arith_term(rng, ctx, depth - 1), arith_term(rng, ctx, depth - 1)]),
        _ => {
            // Division: real `/` or integer `div`/`mod`.
            let a = arith_term(rng, ctx, depth - 1);
            let b = arith_term(rng, ctx, depth - 1);
            if ctx.arith_sort() == Sort::Real {
                Term::real_div(a, b)
            } else if rng.random_bool(0.5) {
                Term::int_div(a, b)
            } else {
                Term::imod(a, b)
            }
        }
    }
}

fn arith_const(rng: &mut impl Rng, ctx: &GenCtx) -> Term {
    if ctx.arith_sort() == Sort::Real {
        Term::real(BigRational::new(
            rng.random_range(-9i64..=9).into(),
            rng.random_range(1i64..=4).into(),
        ))
    } else {
        Term::int(rng.random_range(-9i64..=9))
    }
}

/// A random string term.
pub fn string_term(rng: &mut impl Rng, ctx: &GenCtx, depth: usize) -> Term {
    let leaf = depth == 0 || rng.random_bool(0.4);
    if leaf {
        if !ctx.string_vars.is_empty() && rng.random_bool(0.7) {
            let v = &ctx.string_vars[rng.random_range(0..ctx.string_vars.len())];
            return Term::var(v.clone());
        }
        return Term::str_lit(random_string(rng));
    }
    match rng.random_range(0..5) {
        0 => Term::str_concat(vec![
            string_term(rng, ctx, depth - 1),
            string_term(rng, ctx, depth - 1),
        ]),
        1 => Term::str_substr(
            string_term(rng, ctx, depth - 1),
            Term::int(rng.random_range(0..3)),
            Term::int(rng.random_range(0..4)),
        ),
        2 => Term::str_replace(
            string_term(rng, ctx, depth - 1),
            string_term(rng, ctx, depth - 1),
            string_term(rng, ctx, depth - 1),
        ),
        3 => Term::app(
            Op::StrAt,
            vec![string_term(rng, ctx, depth - 1), Term::int(rng.random_range(0..4))],
        ),
        _ => Term::app(Op::StrFromInt, vec![int_index_term(rng, ctx)]),
    }
}

/// Small integer terms for string positions/lengths.
fn int_index_term(rng: &mut impl Rng, ctx: &GenCtx) -> Term {
    match rng.random_range(0..3) {
        0 => Term::int(rng.random_range(0..5)),
        1 if !ctx.string_vars.is_empty() => {
            let v = &ctx.string_vars[rng.random_range(0..ctx.string_vars.len())];
            Term::str_len(Term::var(v.clone()))
        }
        _ if !ctx.arith_vars.is_empty() => {
            let v = &ctx.arith_vars[rng.random_range(0..ctx.arith_vars.len())];
            Term::var(v.clone())
        }
        _ => Term::int(rng.random_range(0..5)),
    }
}

/// A random regex over short literals (closed — no variables).
pub fn regex_term(rng: &mut impl Rng, depth: usize) -> Term {
    if depth == 0 || rng.random_bool(0.4) {
        return Term::app(Op::StrToRe, vec![Term::str_lit(random_string(rng))]);
    }
    match rng.random_range(0..5) {
        0 => Term::app(Op::ReStar, vec![regex_term(rng, depth - 1)]),
        1 => Term::app(Op::RePlus, vec![regex_term(rng, depth - 1)]),
        2 => Term::app(Op::ReOpt, vec![regex_term(rng, depth - 1)]),
        3 => Term::app(Op::ReUnion, vec![regex_term(rng, depth - 1), regex_term(rng, depth - 1)]),
        _ => Term::app(Op::ReConcat, vec![regex_term(rng, depth - 1), regex_term(rng, depth - 1)]),
    }
}

/// A random boolean atom for the context's theory.
pub fn atom(rng: &mut impl Rng, ctx: &GenCtx, depth: usize) -> Term {
    if ctx.logic.has_strings() {
        string_atom(rng, ctx, depth)
    } else {
        arith_atom(rng, ctx, depth)
    }
}

fn arith_atom(rng: &mut impl Rng, ctx: &GenCtx, depth: usize) -> Term {
    let a = arith_term(rng, ctx, depth);
    let b = arith_term(rng, ctx, depth);
    match rng.random_range(0..6) {
        0 => Term::le(a, b),
        1 => Term::lt(a, b),
        2 => Term::ge(a, b),
        3 => Term::gt(a, b),
        4 => Term::eq(a, b),
        _ => Term::distinct(a, b),
    }
}

fn string_atom(rng: &mut impl Rng, ctx: &GenCtx, depth: usize) -> Term {
    match rng.random_range(0..8) {
        0 => Term::eq(string_term(rng, ctx, depth), string_term(rng, ctx, depth)),
        1 => Term::app(
            Op::StrPrefixOf,
            vec![string_term(rng, ctx, depth - depth.min(1)), string_term(rng, ctx, depth)],
        ),
        2 => Term::app(
            Op::StrSuffixOf,
            vec![string_term(rng, ctx, depth - depth.min(1)), string_term(rng, ctx, depth)],
        ),
        3 => Term::app(
            Op::StrContains,
            vec![string_term(rng, ctx, depth), string_term(rng, ctx, depth - depth.min(1))],
        ),
        4 => Term::app(Op::StrInRe, vec![string_term(rng, ctx, depth), regex_term(rng, 2)]),
        5 => {
            // Length comparison.
            let s = string_term(rng, ctx, depth);
            let bound = int_index_term(rng, ctx);
            let cmp = [Op::Le, Op::Lt, Op::Ge, Op::Gt, Op::Eq][rng.random_range(0..5usize)];
            Term::app(cmp, vec![Term::str_len(s), bound])
        }
        6 => {
            // str.to_int comparison.
            let s = string_term(rng, ctx, depth);
            Term::eq(Term::app(Op::StrToInt, vec![s]), int_index_term(rng, ctx))
        }
        _ => {
            // indexof comparison.
            let s = string_term(rng, ctx, depth);
            let t = string_term(rng, ctx, depth - depth.min(1));
            Term::ge(
                Term::app(Op::StrIndexOf, vec![s, t, Term::int(0)]),
                Term::int(rng.random_range(-1..2)),
            )
        }
    }
}

/// A random boolean formula over atoms and boolean variables.
pub fn bool_formula(rng: &mut impl Rng, ctx: &GenCtx, depth: usize) -> Term {
    if depth == 0 || rng.random_bool(0.4) {
        if !ctx.bool_vars.is_empty() && rng.random_bool(0.3) {
            let v = &ctx.bool_vars[rng.random_range(0..ctx.bool_vars.len())];
            return Term::var(v.clone());
        }
        return atom(rng, ctx, 2);
    }
    match rng.random_range(0..5) {
        0 => Term::and(vec![bool_formula(rng, ctx, depth - 1), bool_formula(rng, ctx, depth - 1)]),
        1 => Term::or(vec![bool_formula(rng, ctx, depth - 1), bool_formula(rng, ctx, depth - 1)]),
        2 => Term::not(bool_formula(rng, ctx, depth - 1)),
        3 => Term::implies(bool_formula(rng, ctx, depth - 1), bool_formula(rng, ctx, depth - 1)),
        _ => Term::ite(
            bool_formula(rng, ctx, depth - 1),
            bool_formula(rng, ctx, depth - 1),
            bool_formula(rng, ctx, depth - 1),
        ),
    }
}

/// Wraps an assertion in a truth-preserving, rewriter-removable quantifier
/// (for the quantified logics LIA/LRA/NIA/NRA).
pub fn quantifier_wrap(rng: &mut impl Rng, ctx: &GenCtx, body: Term) -> Term {
    let h = Symbol::new(format!("h{}", rng.random_range(0..1000)));
    let sort = ctx.arith_sort();
    match rng.random_range(0..3) {
        // Unused binder: ∀h. body.
        0 => Term::forall(vec![(h, sort)], body),
        // One-point existential: ∃h. h = t ∧ body.
        1 => {
            let t = arith_term(rng, ctx, 1);
            Term::exists(vec![(h.clone(), sort)], Term::and(vec![Term::eq(Term::var(h), t), body]))
        }
        // One-point universal: ∀h. h = t ⇒ body.
        _ => {
            let t = arith_term(rng, ctx, 1);
            Term::forall(vec![(h.clone(), sort)], Term::implies(Term::eq(Term::var(h), t), body))
        }
    }
}

/// StringFuzz-style term: deep concatenation chains over variables and
/// literal fragments, mirroring the StringFuzz benchmark generators.
pub fn stringfuzz_concat(rng: &mut impl Rng, ctx: &GenCtx) -> Term {
    let len = rng.random_range(3..8);
    let parts: Vec<Term> = (0..len)
        .map(|_| {
            if !ctx.string_vars.is_empty() && rng.random_bool(0.5) {
                let v = &ctx.string_vars[rng.random_range(0..ctx.string_vars.len())];
                Term::var(v.clone())
            } else {
                Term::str_lit(random_string(rng))
            }
        })
        .collect();
    Term::str_concat(parts)
}

/// Needed by the regex generator for `Rc` plumbing in tests.
#[doc(hidden)]
pub type RcRegex = Rc<yinyang_smtlib::Regex>;

#[cfg(test)]
mod tests {
    use super::*;
    use yinyang_rt::StdRng;
    use yinyang_smtlib::{sort_of, SortEnv};

    fn ctx(logic: Logic, seed: u64) -> (GenCtx, StdRng) {
        let mut rng = StdRng::seed_from_u64(seed);
        let c = GenCtx::sample(&mut rng, logic, &Shape::default());
        (c, rng)
    }

    fn env_of(ctx: &GenCtx) -> SortEnv {
        ctx.declarations().into_iter().collect()
    }

    #[test]
    fn arith_terms_are_well_sorted() {
        for logic in [Logic::QfLia, Logic::QfLra, Logic::QfNia, Logic::QfNra] {
            let (c, mut rng) = ctx(logic, 1);
            let env = env_of(&c);
            for _ in 0..50 {
                let t = arith_term(&mut rng, &c, 3);
                let s = sort_of(&t, &env).expect("well-sorted");
                assert!(s.is_arith());
            }
        }
    }

    #[test]
    fn atoms_are_boolean() {
        for logic in [Logic::QfLia, Logic::QfNra, Logic::QfS, Logic::QfSlia] {
            let (c, mut rng) = ctx(logic, 2);
            let env = env_of(&c);
            for _ in 0..50 {
                let a = atom(&mut rng, &c, 2);
                assert_eq!(sort_of(&a, &env).expect("well-sorted"), Sort::Bool, "{a}");
            }
        }
    }

    #[test]
    fn bool_formulas_are_boolean() {
        let (c, mut rng) = ctx(Logic::QfLia, 3);
        let env = env_of(&c);
        for _ in 0..50 {
            let f = bool_formula(&mut rng, &c, 3);
            assert_eq!(sort_of(&f, &env).unwrap(), Sort::Bool);
        }
    }

    #[test]
    fn linear_logics_have_no_variable_products() {
        let (c, mut rng) = ctx(Logic::QfLia, 4);
        for _ in 0..100 {
            let t = arith_term(&mut rng, &c, 3);
            let mut nonlinear = false;
            let _ = t.any_subterm(&mut |s| {
                if let yinyang_smtlib::TermKind::App(Op::Mul, args) = s.kind() {
                    let non_const = args
                        .iter()
                        .filter(|a| {
                            !matches!(
                                a.kind(),
                                yinyang_smtlib::TermKind::IntConst(_)
                                    | yinyang_smtlib::TermKind::RealConst(_)
                            )
                        })
                        .count();
                    if non_const > 1 {
                        nonlinear = true;
                    }
                }
                nonlinear
            });
            assert!(!nonlinear, "linear logic produced {t}");
        }
    }

    #[test]
    fn quantifier_wraps_are_removable() {
        // The solver's simplifier must reduce the wrapper away.
        let (c, mut rng) = ctx(Logic::Lia, 5);
        for _ in 0..30 {
            let body = atom(&mut rng, &c, 1);
            let wrapped = quantifier_wrap(&mut rng, &c, body.clone());
            assert!(wrapped.has_quantifier() || wrapped == body);
        }
    }

    #[test]
    fn regex_terms_are_reglan() {
        let mut rng = StdRng::seed_from_u64(6);
        let env = SortEnv::new();
        for _ in 0..50 {
            let r = regex_term(&mut rng, 3);
            assert_eq!(sort_of(&r, &env).unwrap(), Sort::RegLan);
        }
    }

    #[test]
    fn stringfuzz_chains_are_deep() {
        let (c, mut rng) = ctx(Logic::QfS, 7);
        let t = stringfuzz_concat(&mut rng, &c);
        assert!(t.size() >= 3);
    }

    #[test]
    fn model_covers_all_declared_vars() {
        for logic in Logic::ALL {
            let (c, _) = ctx(logic, 8);
            for (v, _) in c.declarations() {
                assert!(c.model.get(&v).is_some(), "{logic}: {v} unassigned");
            }
        }
    }
}
