//! Ground-truth validation of generated seeds against the reference
//! solver: the solver must never contradict a seed's constructed
//! satisfiability label. This is the property the paper obtains by
//! pre-classifying SMT-LIB benchmarks with Z3 and cross-checking with
//! CVC4 (Section 4.1).

use yinyang_core::Oracle;
use yinyang_rt::StdRng;
use yinyang_seedgen::{generate_pool, SeedGenerator};
use yinyang_smtlib::Logic;
use yinyang_solver::{SatResult, SmtSolver};

#[test]
fn solver_never_contradicts_seed_labels() {
    let solver = SmtSolver::new();
    let mut rng = StdRng::seed_from_u64(31337);
    let mut decided = 0usize;
    let mut total = 0usize;
    for logic in Logic::ALL {
        let generator = SeedGenerator::new(logic);
        for seed in generate_pool(&mut rng, &generator, 6, 6) {
            total += 1;
            let out = solver.solve_script(&seed.script);
            match (seed.oracle, out.result) {
                (Oracle::Sat, SatResult::Unsat) => {
                    panic!("solver refuted a sat seed ({logic}):\n{}", seed.script)
                }
                (Oracle::Unsat, SatResult::Sat) => {
                    panic!("solver satisfied an unsat seed ({logic}):\n{}", seed.script)
                }
                (_, SatResult::Unknown) => {}
                _ => decided += 1,
            }
        }
    }
    // The solver must decide a healthy fraction of its own seed diet —
    // otherwise the campaign cannot detect flip-style soundness bugs.
    assert!(decided * 4 >= total, "solver decided only {decided}/{total} seeds");
}

#[test]
fn stringfuzz_seeds_also_check_out() {
    let solver = SmtSolver::new();
    let mut rng = StdRng::seed_from_u64(404);
    let generator = SeedGenerator::stringfuzz();
    for seed in generate_pool(&mut rng, &generator, 8, 8) {
        let out = solver.solve_script(&seed.script);
        match (seed.oracle, out.result) {
            (Oracle::Sat, SatResult::Unsat) | (Oracle::Unsat, SatResult::Sat) => {
                panic!("label contradiction:\n{}", seed.script)
            }
            _ => {}
        }
    }
}

#[test]
fn unsat_cores_alone_are_refutable() {
    // The contradiction cores must be refutable by the solver *on their
    // own* for most draws — this is what makes unsat seeds useful.
    use yinyang_seedgen::contradiction::contradiction_core;
    use yinyang_seedgen::terms::{GenCtx, Shape};
    use yinyang_smtlib::Script;
    let solver = SmtSolver::new();
    let mut rng = StdRng::seed_from_u64(2718);
    let mut refuted = 0usize;
    let mut total = 0usize;
    for logic in [Logic::QfLia, Logic::QfLra, Logic::QfNia, Logic::QfNra] {
        for _ in 0..15 {
            let ctx = GenCtx::sample(&mut rng, logic, &Shape::default());
            let core = contradiction_core(&mut rng, &ctx);
            let script = Script::check_sat_script(logic.name(), ctx.declarations(), core);
            total += 1;
            match solver.solve_script(&script).result {
                SatResult::Unsat => refuted += 1,
                SatResult::Sat => panic!("satisfiable contradiction core:\n{script}"),
                SatResult::Unknown => {}
            }
        }
    }
    assert!(refuted * 3 >= total * 2, "solver refuted only {refuted}/{total} contradiction cores");
}
