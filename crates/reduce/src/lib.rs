//! Bug-triggering formula reduction — the workspace's C-Reduce substitute.
//!
//! The paper reduces bug-triggering fused formulas with C-Reduce plus a
//! custom pretty printer ("flattens nestings of the same operator, removes
//! additions and multiplications with neutral elements"). This crate
//! reimplements that pipeline natively on SMT-LIB ASTs:
//!
//! 1. **assert-level ddmin** — remove whole assertions while the
//!    interestingness predicate (e.g. "solver still answers `sat` on this
//!    unsat-by-construction formula") keeps holding;
//! 2. **term-level shrinking** — replace subterms by same-sorted children
//!    or canonical constants;
//! 3. **pretty printing** — the paper's flattening/neutral-element pass
//!    (the solver's semantics-preserving simplifier);
//! 4. **declaration cleanup** — drop unused variables.
//!
//! # Examples
//!
//! ```
//! use yinyang_reduce::reduce;
//! use yinyang_smtlib::parse_script;
//!
//! let script = parse_script(
//!     "(declare-fun x () Int) (declare-fun y () Int)
//!      (assert (> x 0)) (assert (< y 7)) (assert (< x 0)) (check-sat)",
//! )?;
//! // Keep shrinking while x's contradiction is still present.
//! let reduced = reduce(&script, &mut |s| {
//!     let text = s.to_string();
//!     text.contains("(> x 0)") && text.contains("(< x 0)")
//! });
//! assert_eq!(reduced.asserts().len(), 2, "the y assert is gone");
//! # Ok::<(), yinyang_smtlib::ParseError>(())
//! ```

#![warn(missing_docs)]

use yinyang_rt::impl_json_struct;
use yinyang_smtlib::{Command, Script, Sort, SortEnv, Term, TermKind};
use yinyang_solver::simplify;

/// Total candidate evaluations before the reducer settles.
const BUDGET: usize = 2_000;

/// What one [`reduce_with_stats`] run did, for forensics bundles and the
/// `reduce.*` metrics counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReduceStats {
    /// ddmin + shrink passes until a fixed point.
    pub passes: usize,
    /// Candidate scripts handed to the interestingness predicate.
    pub candidates: usize,
    /// Total assert-term nodes before reduction.
    pub nodes_before: usize,
    /// Total assert-term nodes after reduction.
    pub nodes_after: usize,
    /// Assertion count before reduction.
    pub asserts_before: usize,
    /// Assertion count after reduction.
    pub asserts_after: usize,
}

impl_json_struct!(ReduceStats {
    passes,
    candidates,
    nodes_before,
    nodes_after,
    asserts_before,
    asserts_after,
});

fn node_count(script: &Script) -> usize {
    script.asserts().iter().map(Term::size).sum()
}

/// Reduces `script` while `interesting` holds.
///
/// `interesting` must hold for the input script; the result is the smallest
/// interesting script found within budget. The predicate is invoked on
/// every candidate, so it should be reasonably cheap (or rely on solver
/// timeouts).
pub fn reduce(script: &Script, interesting: &mut dyn FnMut(&Script) -> bool) -> Script {
    reduce_with_stats(script, interesting).0
}

/// [`reduce`] plus its [`ReduceStats`]. The whole run is wrapped in a
/// `reduce` span and the totals land in the `reduce.*` metrics counters
/// (`passes`, `candidates`, `nodes_before`, `nodes_after`), so bundle
/// minimization shows up in campaign profiles and `--metrics-out` dumps
/// like any other stage.
pub fn reduce_with_stats(
    script: &Script,
    interesting: &mut dyn FnMut(&Script) -> bool,
) -> (Script, ReduceStats) {
    debug_assert!(interesting(script), "input must be interesting");
    let _span = yinyang_rt::span!("reduce");
    let mut stats = ReduceStats {
        nodes_before: node_count(script),
        asserts_before: script.asserts().len(),
        ..ReduceStats::default()
    };
    let mut budget = BUDGET;
    // Each candidate evaluation declares one unit of work so the `reduce`
    // span measures reduction effort in tick mode even when the predicate
    // never reaches an instrumented solver.
    let mut check = |candidate: &Script| {
        yinyang_rt::trace::work(1);
        interesting(candidate)
    };
    let mut current = script.clone();
    loop {
        stats.passes += 1;
        let mut progressed = false;
        let spent_before = BUDGET - budget;
        let after_ddmin = ddmin_asserts(&current, &mut check, &mut budget);
        if after_ddmin.asserts().len() < current.asserts().len() {
            progressed = true;
        }
        current = after_ddmin;
        let after_shrink = shrink_terms(&current, &mut check, &mut budget);
        if after_shrink != current {
            progressed = true;
        }
        current = after_shrink;
        stats.candidates += (BUDGET - budget) - spent_before;
        if !progressed || budget == 0 {
            break;
        }
    }
    let pretty = pretty_print(&current);
    if budget > 0 && check(&pretty) {
        stats.candidates += 1;
        current = pretty;
    }
    let reduced = drop_unused_declarations(&current);
    stats.nodes_after = node_count(&reduced);
    stats.asserts_after = reduced.asserts().len();
    yinyang_rt::metrics::counter_add("reduce.passes", stats.passes as u64);
    yinyang_rt::metrics::counter_add("reduce.candidates", stats.candidates as u64);
    yinyang_rt::metrics::counter_add("reduce.nodes_before", stats.nodes_before as u64);
    yinyang_rt::metrics::counter_add("reduce.nodes_after", stats.nodes_after as u64);
    (reduced, stats)
}

/// Classic ddmin over the assertion list.
fn ddmin_asserts(
    script: &Script,
    interesting: &mut dyn FnMut(&Script) -> bool,
    budget: &mut usize,
) -> Script {
    let mut asserts = script.asserts();
    let mut granularity = 2usize;
    while asserts.len() >= 2 && *budget > 0 {
        let chunk = (asserts.len() / granularity).max(1);
        let mut removed_any = false;
        let mut start = 0;
        while start < asserts.len() && *budget > 0 {
            let end = (start + chunk).min(asserts.len());
            let mut candidate: Vec<Term> = Vec::new();
            candidate.extend_from_slice(&asserts[..start]);
            candidate.extend_from_slice(&asserts[end..]);
            if candidate.is_empty() {
                start = end;
                continue;
            }
            let cand_script = rebuild(script, &candidate);
            *budget -= 1;
            if interesting(&cand_script) {
                asserts = candidate;
                removed_any = true;
                // Keep the same start: the next chunk slid into place.
            } else {
                start = end;
            }
        }
        if removed_any {
            granularity = granularity.saturating_sub(1).max(2);
        } else if granularity >= asserts.len() {
            break;
        } else {
            granularity = (granularity * 2).min(asserts.len());
        }
    }
    rebuild(script, &asserts)
}

/// Replaces the assert block while preserving everything else.
fn rebuild(script: &Script, asserts: &[Term]) -> Script {
    let mut out = Script::new();
    let mut inserted = false;
    for c in &script.commands {
        match c {
            Command::Assert(_) => {
                if !inserted {
                    for a in asserts {
                        out.push(Command::Assert(a.clone()));
                    }
                    inserted = true;
                }
            }
            other => out.push(other.clone()),
        }
    }
    out
}

/// One pass of term-level shrinking over every assert.
fn shrink_terms(
    script: &Script,
    interesting: &mut dyn FnMut(&Script) -> bool,
    budget: &mut usize,
) -> Script {
    let env: SortEnv = script.declarations();
    let mut asserts = script.asserts();
    for i in 0..asserts.len() {
        let mut changed = true;
        while changed && *budget > 0 {
            changed = false;
            for candidate_term in shrink_candidates(&asserts[i], &env) {
                if candidate_term == asserts[i] {
                    continue;
                }
                let mut cand = asserts.clone();
                cand[i] = candidate_term;
                let cand_script = rebuild(script, &cand);
                *budget = budget.saturating_sub(1);
                if interesting(&cand_script) {
                    asserts = cand;
                    changed = true;
                    break;
                }
                if *budget == 0 {
                    break;
                }
            }
        }
    }
    rebuild(script, &asserts)
}

/// Candidate replacements: for each subterm position, same-sorted children
/// (hoisting) and canonical constants. Produces whole-assert rewrites,
/// smallest-first heuristically.
fn shrink_candidates(assert: &Term, env: &SortEnv) -> Vec<Term> {
    let mut out = Vec::new();
    // Hoist boolean children of the root first (cheap big wins).
    collect_rewrites(assert, env, &mut |original, replacement| {
        out.push((original.size(), replace_once(assert, original, replacement)));
    });
    out.sort_by_key(|(size, _)| std::cmp::Reverse(*size));
    out.into_iter().map(|(_, t)| t).collect()
}

/// Calls `emit(subterm, replacement)` for every plausible shrink.
fn collect_rewrites(term: &Term, env: &SortEnv, emit: &mut impl FnMut(&Term, &Term)) {
    if let Ok(sort) = yinyang_smtlib::sort_of(term, env) {
        if term.size() > 1 {
            // Canonical constants.
            let canon = match sort {
                Sort::Bool => vec![Term::tru(), Term::fals()],
                Sort::Int => vec![Term::int(0), Term::int(1)],
                Sort::Real => vec![Term::real_frac(0, 1), Term::real_frac(1, 1)],
                Sort::String => vec![Term::str_lit("")],
                Sort::RegLan => vec![],
            };
            for c in &canon {
                emit(term, c);
            }
            // Same-sorted children (hoisting).
            for child in term.children() {
                if yinyang_smtlib::sort_of(&child, env) == Ok(sort) {
                    emit(term, &child);
                }
            }
        }
    }
    for child in term.children() {
        collect_rewrites(&child, env, emit);
    }
}

/// Replaces the first occurrence of `from` (structural) with `to`.
fn replace_once(term: &Term, from: &Term, to: &Term) -> Term {
    fn go(t: &Term, from: &Term, to: &Term, done: &mut bool) -> Term {
        if *done {
            return t.clone();
        }
        if t == from {
            *done = true;
            return to.clone();
        }
        match t.kind() {
            TermKind::App(op, args) => {
                let new_args: Vec<Term> = args.iter().map(|a| go(a, from, to, done)).collect();
                Term::app(*op, new_args)
            }
            TermKind::Quant(q, b, body) => Term::quant(*q, b.clone(), go(body, from, to, done)),
            TermKind::Let(bindings, body) => {
                let nb: Vec<_> =
                    bindings.iter().map(|(s, v)| (s.clone(), go(v, from, to, done))).collect();
                Term::let_in(nb, go(body, from, to, done))
            }
            _ => t.clone(),
        }
    }
    let mut done = false;
    go(term, from, to, &mut done)
}

/// The paper's pretty printer: flatten same-operator nests and drop neutral
/// elements — implemented by the solver's semantics-preserving simplifier.
pub fn pretty_print(script: &Script) -> Script {
    let asserts: Vec<Term> = script.asserts().iter().map(simplify).collect();
    rebuild(script, &asserts)
}

/// Drops declarations of variables no assert mentions.
pub fn drop_unused_declarations(script: &Script) -> Script {
    let mut used = std::collections::BTreeSet::new();
    for a in script.asserts() {
        used.extend(a.free_vars());
    }
    let mut out = Script::new();
    for c in &script.commands {
        match c {
            Command::DeclareFun(name, args, _) if args.is_empty() && !used.contains(name) => {}
            Command::DeclareConst(name, _) if !used.contains(name) => {}
            other => out.push(other.clone()),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use yinyang_smtlib::parse_script;

    #[test]
    fn ddmin_removes_irrelevant_asserts() {
        let s = parse_script(
            "(declare-fun a () Int) (declare-fun b () Int) (declare-fun c () Int)
             (assert (> a 0)) (assert (> b 1)) (assert (> c 2))
             (assert (< a 0)) (assert (< b 9)) (check-sat)",
        )
        .unwrap();
        let reduced = reduce(&s, &mut |cand| {
            let t = cand.to_string();
            t.contains("(> a 0)") && t.contains("(< a 0)")
        });
        assert_eq!(reduced.asserts().len(), 2);
        // b and c declarations dropped.
        assert!(!reduced.to_string().contains("declare-fun b"));
        assert!(!reduced.to_string().contains("declare-fun c"));
    }

    #[test]
    fn term_shrinking_hoists_children() {
        let s = parse_script(
            "(declare-fun x () Int)
             (assert (and (> (+ x 0 (* 1 17)) 5) (= x x))) (check-sat)",
        )
        .unwrap();
        let reduced = reduce(&s, &mut |cand| cand.to_string().contains("17"));
        // The formula must still contain 17 but should be much smaller.
        let final_size: usize = reduced.asserts().iter().map(Term::size).sum();
        let orig_size: usize = s.asserts().iter().map(Term::size).sum();
        assert!(final_size < orig_size, "no shrinking happened");
    }

    #[test]
    fn pretty_printer_flattens_and_drops_neutrals() {
        let s = parse_script(
            "(declare-fun x () Int)
             (assert (> (+ (+ x 0) (* 1 x)) 0)) (check-sat)",
        )
        .unwrap();
        let p = pretty_print(&s);
        assert_eq!(p.asserts()[0].to_string(), "(> (+ x x) 0)");
    }

    #[test]
    fn reduction_preserves_interestingness() {
        let s = parse_script(
            "(declare-fun z () Int) (declare-fun y () Int) (declare-fun q () Bool)
             (assert (or q (= (div z y) 1))) (assert q) (check-sat)",
        )
        .unwrap();
        let mut check = |cand: &Script| cand.to_string().contains("div");
        let reduced = reduce(&s, &mut check);
        assert!(check(&reduced));
        assert!(reduced.asserts().len() <= 2);
    }

    #[test]
    fn single_assert_is_kept() {
        let s = parse_script("(declare-fun x () Int) (assert (> x 0)) (check-sat)").unwrap();
        let reduced = reduce(&s, &mut |cand| !cand.asserts().is_empty());
        assert_eq!(reduced.asserts().len(), 1);
    }

    #[test]
    fn unused_declaration_cleanup() {
        let s = parse_script(
            "(declare-fun x () Int) (declare-fun dead () String)
             (assert (> x 0)) (check-sat)",
        )
        .unwrap();
        let cleaned = drop_unused_declarations(&s);
        assert!(!cleaned.to_string().contains("dead"));
        assert!(cleaned.to_string().contains("declare-fun x"));
    }

    #[test]
    fn stats_report_passes_candidates_and_node_counts() {
        let s = parse_script(
            "(declare-fun a () Int) (declare-fun b () Int)
             (assert (> a 0)) (assert (> b 1)) (assert (< a 0)) (check-sat)",
        )
        .unwrap();
        let before = yinyang_rt::metrics::local_snapshot();
        let (reduced, stats) = reduce_with_stats(&s, &mut |cand| {
            let t = cand.to_string();
            t.contains("(> a 0)") && t.contains("(< a 0)")
        });
        assert_eq!(stats.asserts_before, 3);
        assert_eq!(stats.asserts_after, 2);
        assert_eq!(reduced.asserts().len(), stats.asserts_after);
        assert!(stats.passes >= 1);
        assert!(stats.candidates >= 1);
        assert!(stats.nodes_after < stats.nodes_before);
        assert_eq!(stats.nodes_after, reduced.asserts().iter().map(Term::size).sum::<usize>());
        // The same totals land in the metrics registry, and the run is
        // visible as a `reduce` span.
        let d = yinyang_rt::metrics::local_snapshot().delta(&before);
        assert_eq!(d.counter("reduce.passes"), stats.passes as u64);
        assert_eq!(d.counter("reduce.candidates"), stats.candidates as u64);
        assert_eq!(d.counter("reduce.nodes_before"), stats.nodes_before as u64);
        assert_eq!(d.counter("reduce.nodes_after"), stats.nodes_after as u64);
        assert_eq!(d.histograms["span.reduce"].count(), 1);
    }

    #[test]
    fn stats_roundtrip_through_json() {
        use yinyang_rt::json::{FromJson, Json, ToJson};
        let stats = ReduceStats {
            passes: 2,
            candidates: 17,
            nodes_before: 40,
            nodes_after: 9,
            asserts_before: 5,
            asserts_after: 2,
        };
        let back =
            ReduceStats::from_json(&Json::parse(&stats.to_json().compact()).unwrap()).unwrap();
        assert_eq!(back, stats);
    }

    #[test]
    fn replace_once_only_touches_first() {
        let t = yinyang_smtlib::parse_term("(+ x x)").unwrap();
        let from = yinyang_smtlib::parse_term("x").unwrap();
        let out = replace_once(&t, &from, &Term::int(0));
        assert_eq!(out.to_string(), "(+ 0 x)");
    }
}
