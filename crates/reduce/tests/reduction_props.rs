//! Properties of the reducer: monotone shrinking, predicate preservation,
//! and pretty-printer semantics preservation.

use yinyang_reduce::{drop_unused_declarations, pretty_print, reduce};
use yinyang_rt::prop::assume;
use yinyang_rt::{props, Rng, StdRng};
use yinyang_seedgen::SeedGenerator;
use yinyang_smtlib::{Logic, Model, Script, Term, Value, ZeroDivPolicy};

props! {
    cases: 24;

    /// Reduction never grows the script, always keeps the predicate true,
    /// and the result is well-sorted.
    fn reduce_shrinks_and_preserves(seed in |r: &mut StdRng| r.random_range(0u64..5_000)) {
        let mut rng = StdRng::seed_from_u64(seed);
        let generator = SeedGenerator::new(Logic::QfLia);
        let s = generator.generate_unsat(&mut rng).script;
        // Predicate: the script still mentions a comparison operator.
        let mut pred = |cand: &Script| {
            let t = cand.to_string();
            t.contains('<') || t.contains('>')
        };
        assume(pred(&s));
        let reduced = reduce(&s, &mut pred);
        assert!(pred(&reduced));
        assert!(reduced.to_string().len() <= s.to_string().len());
        assert!(yinyang_smtlib::check_script(&reduced).is_ok());
    }

    /// The pretty printer is semantics-preserving: a model of the original
    /// satisfies the pretty-printed script and vice versa.
    fn pretty_print_preserves_models(seed in |r: &mut StdRng| r.random_range(0u64..5_000)) {
        let mut rng = StdRng::seed_from_u64(seed);
        let generator = SeedGenerator::new(Logic::QfLia);
        let s = generator.generate_sat(&mut rng);
        let pretty = pretty_print(&s.script);
        let model: &Model = s.model.as_ref().expect("sat seed");
        for (a, b) in s.script.asserts().iter().zip(pretty.asserts().iter()) {
            let va = model.eval_with(a, ZeroDivPolicy::Zero);
            let vb = model.eval_with(b, ZeroDivPolicy::Zero);
            if let (Ok(Value::Bool(x)), Ok(Value::Bool(y))) = (va, vb) {
                assert_eq!(x, y, "pretty printing changed {} vs {}", a, b);
            }
        }
    }

    /// Dropping unused declarations never removes a used one.
    fn unused_declaration_cleanup_is_safe(seed in |r: &mut StdRng| r.random_range(0u64..5_000)) {
        let mut rng = StdRng::seed_from_u64(seed);
        let generator = SeedGenerator::new(Logic::QfNra);
        let mut s = generator.generate_sat(&mut rng).script;
        s.declare_var("definitely_unused_xyz", yinyang_smtlib::Sort::Int);
        let cleaned = drop_unused_declarations(&s);
        assert!(!cleaned.to_string().contains("definitely_unused_xyz"));
        // Every free variable of the assertions is still declared.
        let decls = cleaned.declarations();
        for a in cleaned.asserts() {
            for v in a.free_vars() {
                assert!(decls.contains_key(&v), "{v} lost its declaration");
            }
        }
    }
}

/// Reduction is idempotent with respect to the assert count: reducing a
/// reduced script removes nothing more (same predicate).
#[test]
fn reduction_reaches_a_fixpoint() {
    let script = yinyang_smtlib::parse_script(
        "(declare-fun a () Int) (declare-fun b () Int) (declare-fun c () Int)
         (assert (> a 0)) (assert (< a 0)) (assert (> b 1)) (assert (> c 2))
         (assert (= b c)) (check-sat)",
    )
    .unwrap();
    let mut pred = |cand: &Script| {
        let t = cand.to_string();
        t.contains("(> a 0)") && t.contains("(< a 0)")
    };
    let once = reduce(&script, &mut pred);
    let twice = reduce(&once, &mut pred);
    assert_eq!(once.asserts().len(), twice.asserts().len());
    assert_eq!(once.asserts().len(), 2);
}

/// Reduction works through the trait-object interface on a term predicate
/// (the campaign wires solver-answer predicates the same way).
#[test]
fn reduce_with_term_level_predicate() {
    let script = yinyang_smtlib::parse_script(
        "(declare-fun z () Int) (declare-fun y () Int)
         (assert (and (= (div z y) 1) (> y 0) (> z 0) (< z 100)))
         (check-sat)",
    )
    .unwrap();
    let reduced = reduce(&script, &mut |cand| {
        cand.asserts().iter().any(|a| {
            a.any_subterm(&mut |t| {
                matches!(t.kind(), yinyang_smtlib::TermKind::App(yinyang_smtlib::Op::IntDiv, _))
            })
        })
    });
    // The div must survive; the irrelevant bounds should mostly go.
    let text = reduced.to_string();
    assert!(text.contains("div"));
    assert!(
        reduced.asserts().iter().map(Term::size).sum::<usize>()
            <= script.asserts().iter().map(Term::size).sum::<usize>()
    );
}
