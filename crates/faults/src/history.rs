//! The historical soundness-bug survey behind Fig. 9 and RQ2.
//!
//! The paper surveys the GitHub issue trackers: 146 soundness bugs reported
//! against Z3 from April 2015 to October 2019, and 42 against CVC4 since
//! July 2010. This module records that survey as static data (the trackers
//! are not reachable offline); the RQ2 experiment combines it with the
//! campaign's measured findings to reproduce the 16% / 11% claims.

/// Soundness bugs per year in the Z3-like tracker (Fig. 9, left).
pub fn zirkon_soundness_by_year() -> Vec<(u32, usize)> {
    vec![(2015, 63), (2016, 28), (2017, 22), (2018, 18), (2019, 15)]
}

/// Soundness bugs per year in the CVC4-like tracker (Fig. 9, right).
pub fn corvus_soundness_by_year() -> Vec<(u32, usize)> {
    vec![
        (2010, 2),
        (2011, 9),
        (2012, 1),
        (2013, 9),
        (2014, 3),
        (2015, 1),
        (2016, 2),
        (2017, 1),
        (2018, 13),
        (2019, 1),
    ]
}

/// Historical nonlinear-logic soundness bugs in Z3 since 2015 (the paper:
/// YinYang found 18 of these 25) and string-logic ones (15 of 53).
pub fn zirkon_nonlinear_total() -> usize {
    25
}

/// See [`zirkon_nonlinear_total`].
pub fn zirkon_string_total() -> usize {
    53
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_match_paper_text() {
        // "there were only 146 soundness bugs reported on the Z3 issue
        // tracker from April 2015 to October 2019"
        let z: usize = zirkon_soundness_by_year().iter().map(|(_, n)| n).sum();
        assert_eq!(z, 146);
        // "Since July 2010, there were only 42 soundness bugs" (CVC4).
        let c: usize = corvus_soundness_by_year().iter().map(|(_, n)| n).sum();
        assert_eq!(c, 42);
    }

    #[test]
    fn found_fractions_match_rq2() {
        // 24/146 ≈ 16%, 5/42 ≈ 11% (the paper truncates the percentages).
        assert_eq!((24.0f64 / 146.0 * 100.0).floor() as i64, 16);
        assert_eq!((5.0f64 / 42.0 * 100.0).floor() as i64, 11);
    }
}
