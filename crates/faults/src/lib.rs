//! Fault-injected solver personas — the workspace's stand-in for the
//! historical Z3/CVC4 bugs the paper found.
//!
//! The evaluation of the paper (RQ1/RQ2/RQ4, Figs. 8–10) measures how many
//! *latent defects* Semantic Fusion surfaces. Offline we cannot fuzz the
//! real Z3/CVC4 binaries, so this crate wraps the reference
//! [`yinyang_solver::SmtSolver`] in two personas:
//!
//! * **Zirkon** — Z3-like: 37 confirmed injected bugs (24 soundness, 11
//!   crash, 1 performance, 1 unknown-class) over NRA/NIA/QF_NRA/QF_S/QF_SLIA;
//! * **Corvus** — CVC4-like: 8 confirmed injected bugs (5 soundness, 1
//!   crash, 2 performance).
//!
//! Each bug has a realistic [`Trigger`] (a formula shape tied to a code
//! path), an [`Action`] (wrong answer, panic, or spurious `unknown`), a
//! logic attribution matching Fig. 8c, and a release history matching
//! Fig. 10. [`history`] records the paper's tracker survey behind Fig. 9.

#![warn(missing_docs)]

pub mod history;
mod registry;
mod solver;
mod trigger;

pub use registry::{
    bugs_of, registry, releases_of, Action, BugClass, BugStatus, InjectedBug, SolverId,
};
pub use solver::FaultySolver;
pub use trigger::Trigger;
