//! Fault-injected solver personas implementing
//! [`SolverUnderTest`](yinyang_core::SolverUnderTest).

use crate::registry::{bugs_of, Action, BugStatus, InjectedBug, SolverId};
use std::collections::BTreeSet;
use yinyang_core::{SolverAnswer, SolverUnderTest};
use yinyang_smtlib::{Logic, Script};
use yinyang_solver::{SatResult, SmtSolver, SolverConfig};

/// A solver persona at a specific release, wrapping the reference
/// [`SmtSolver`] with the release's injected bugs.
///
/// # Examples
///
/// ```
/// use yinyang_faults::{FaultySolver, SolverId};
/// use yinyang_core::SolverUnderTest;
///
/// let trunk = FaultySolver::trunk(SolverId::Zirkon);
/// assert_eq!(trunk.name(), "zirkon-trunk");
/// let script = yinyang_smtlib::parse_script(
///     "(declare-fun x () Int) (assert (> x 0)) (check-sat)",
/// )?;
/// // No trigger fires: the answer comes from the reference solver.
/// assert_eq!(trunk.check_sat(&script), yinyang_core::SolverAnswer::Sat);
/// # Ok::<(), yinyang_smtlib::ParseError>(())
/// ```
pub struct FaultySolver {
    id: SolverId,
    release: String,
    bugs: Vec<InjectedBug>,
    /// Bug ids deactivated by the campaign's fix simulation.
    fixed: BTreeSet<u32>,
    base: SmtSolver,
}

impl FaultySolver {
    /// The persona's trunk (all registry bugs active).
    pub fn trunk(id: SolverId) -> Self {
        FaultySolver::at_release(id, "trunk")
    }

    /// The persona at a specific release: only bugs shipped in that release
    /// are active (report-only entries only live in trunk).
    pub fn at_release(id: SolverId, release: &str) -> Self {
        let bugs = bugs_of(id)
            .into_iter()
            .filter(|b| b.in_release(release))
            .filter(|b| release == "trunk" || matches!(b.status, BugStatus::Confirmed { .. }))
            .collect();
        FaultySolver {
            id,
            release: release.to_owned(),
            bugs,
            fixed: BTreeSet::new(),
            base: SmtSolver::with_config(SolverConfig::default()),
        }
    }

    /// The bug-free reference persona (for coverage baselines and the
    /// no-false-positive guarantee).
    pub fn reference(id: SolverId) -> Self {
        FaultySolver {
            id,
            release: "reference".to_owned(),
            bugs: Vec::new(),
            fixed: BTreeSet::new(),
            base: SmtSolver::with_config(SolverConfig::default()),
        }
    }

    /// Replaces the underlying reference solver's limits (campaigns use
    /// tighter budgets for throughput).
    pub fn set_base_config(&mut self, config: SolverConfig) {
        self.base = SmtSolver::with_config(config);
    }

    /// The persona id.
    pub fn id(&self) -> SolverId {
        self.id
    }

    /// The release string.
    pub fn release(&self) -> &str {
        &self.release
    }

    /// Currently active (unfixed) bugs.
    pub fn active_bugs(&self) -> Vec<&InjectedBug> {
        self.bugs.iter().filter(|b| !self.fixed.contains(&b.id)).collect()
    }

    /// Simulates the developers fixing a bug: deactivates it for subsequent
    /// queries (only meaningful for `Confirmed { fixed: true }` bugs, but
    /// the campaign enforces that policy).
    pub fn apply_fix(&mut self, bug_id: u32) {
        self.fixed.insert(bug_id);
    }

    /// The first active bug whose trigger fires on the script, if any —
    /// this is also the bug whose action [`check_sat`](Self::check_sat)
    /// will perform.
    pub fn triggered_bug(&self, script: &Script) -> Option<&InjectedBug> {
        let logic = script.logic().and_then(|l| l.parse::<Logic>().ok());
        self.bugs
            .iter()
            .filter(|b| !self.fixed.contains(&b.id))
            .find(|b| Some(b.logic) == logic && b.trigger.matches(script))
    }
}

impl SolverUnderTest for FaultySolver {
    fn name(&self) -> String {
        format!("{}-{}", self.id.name(), self.release)
    }

    fn check_sat(&self, script: &Script) -> SolverAnswer {
        if let Some(bug) = self.triggered_bug(script) {
            yinyang_rt::metrics::counter_add("faults.bug_triggered", 1);
            yinyang_rt::metrics::counter_add(&format!("faults.bug.{}", bug.id), 1);
            match &bug.action {
                Action::ForceSat => return SolverAnswer::Sat,
                Action::ForceUnsat => return SolverAnswer::Unsat,
                Action::Panic(msg) => panic!("{}", msg),
                Action::ReportUnknown => return SolverAnswer::Unknown,
            }
        }
        match self.base.solve_script(script).result {
            SatResult::Sat => SolverAnswer::Sat,
            SatResult::Unsat => SolverAnswer::Unsat,
            SatResult::Unknown => SolverAnswer::Unknown,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yinyang_smtlib::parse_script;

    fn fig13a_like() -> Script {
        parse_script(
            r#"(set-logic QF_S)
               (declare-fun a () String) (declare-fun b () String) (declare-fun c () String)
               (assert (and (str.in_re c (re.* (str.to_re "aa")))
                            (= 0 (str.to_int (str.replace a b (str.at a (str.len a)))))))
               (assert (= a (str.++ b c)))
               (check-sat)"#,
        )
        .unwrap()
    }

    #[test]
    fn trunk_zirkon_misreports_fig13a_shape() {
        let z = FaultySolver::trunk(SolverId::Zirkon);
        let bug = z.triggered_bug(&fig13a_like()).expect("a string bug fires");
        assert_eq!(bug.logic, Logic::QfS);
        // The action must be applied.
        let answer = z.check_sat(&fig13a_like());
        match bug.action {
            Action::ForceSat => assert_eq!(answer, SolverAnswer::Sat),
            Action::ForceUnsat => assert_eq!(answer, SolverAnswer::Unsat),
            _ => {}
        }
    }

    #[test]
    fn reference_persona_has_no_bugs() {
        let r = FaultySolver::reference(SolverId::Zirkon);
        assert!(r.triggered_bug(&fig13a_like()).is_none());
        assert!(r.active_bugs().is_empty());
    }

    #[test]
    fn logic_gating() {
        // The same term shapes under a different logic do not fire.
        let mut text = fig13a_like().to_string();
        text = text.replace("(set-logic QF_S)", "(set-logic QF_SLIA)");
        let script = parse_script(&text).unwrap();
        let z = FaultySolver::trunk(SolverId::Zirkon);
        let bug = z.triggered_bug(&script);
        assert!(bug.is_none() || bug.unwrap().logic == Logic::QfSlia);
    }

    #[test]
    fn fixes_deactivate_bugs() {
        let mut z = FaultySolver::trunk(SolverId::Zirkon);
        let before = z.triggered_bug(&fig13a_like()).expect("fires").id;
        z.apply_fix(before);
        let after = z.triggered_bug(&fig13a_like()).map(|b| b.id);
        assert_ne!(after, Some(before), "fixed bug no longer fires");
    }

    #[test]
    fn old_releases_have_fewer_bugs() {
        let trunk = FaultySolver::trunk(SolverId::Corvus);
        let old = FaultySolver::at_release(SolverId::Corvus, "1.5");
        assert!(old.active_bugs().len() < trunk.active_bugs().len());
    }

    #[test]
    fn clean_formulas_fall_through_to_reference() {
        let z = FaultySolver::trunk(SolverId::Zirkon);
        let s = parse_script(
            "(set-logic QF_LIA) (declare-fun x () Int)
             (assert (> x 3)) (assert (< x 3)) (check-sat)",
        )
        .unwrap();
        assert_eq!(z.check_sat(&s), SolverAnswer::Unsat);
    }

    #[test]
    fn crash_bugs_panic() {
        let z = FaultySolver::trunk(SolverId::Zirkon);
        let s = parse_script(
            "(set-logic NRA) (declare-fun a () Real)
             (assert (exists ((h Real)) (<= 0.0 (/ a h))))
             (check-sat)",
        )
        .unwrap();
        let answer = yinyang_core::run_catching(&z, &s);
        assert!(matches!(answer, SolverAnswer::Crash(msg) if msg.contains("is_numeral")));
    }
}
