//! The injected-bug registry: 45 confirmed bugs (24+5 soundness, 11+1
//! crash, 1+2 performance, 1 unknown-class) plus won't-fix and pending
//! report entries, distributed over solvers and logics exactly as the
//! paper's Fig. 8a/8b/8c tables report for Z3 and CVC4.
//!
//! The two solver personas are **Zirkon** (Z3-like: the larger, more
//! aggressive rewriter with most of the bugs) and **Corvus** (CVC4-like:
//! fewer but "major" bugs).

use crate::trigger::Trigger;
use yinyang_smtlib::Logic;

/// Which solver persona a bug lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SolverId {
    /// The Z3-like persona.
    Zirkon,
    /// The CVC4-like persona.
    Corvus,
}

impl SolverId {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            SolverId::Zirkon => "zirkon",
            SolverId::Corvus => "corvus",
        }
    }

    /// Parses a persona name back to its id. Accepts the bare name and any
    /// `<name>-<release>` spelling ([`FaultySolver`](crate::FaultySolver)
    /// reports itself as e.g. `zirkon-trunk`), which is how campaign
    /// findings and reproduction bundles record the solver under test.
    pub fn from_name(name: &str) -> Option<SolverId> {
        [SolverId::Zirkon, SolverId::Corvus]
            .into_iter()
            .find(|id| name == id.name() || name.starts_with(&format!("{}-", id.name())))
    }
}

/// Bug classes, as in Fig. 8b.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BugClass {
    /// Incorrect sat/unsat result.
    Soundness,
    /// Abnormal termination.
    Crash,
    /// `unknown`/non-termination on simple inputs.
    Performance,
    /// Spurious `unknown` results (the paper's fourth category).
    Unknown,
}

impl BugClass {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            BugClass::Soundness => "Soundness",
            BugClass::Crash => "Crash",
            BugClass::Performance => "Performance",
            BugClass::Unknown => "Unknown",
        }
    }
}

/// Tracker status of a bug (drives the Fig. 8a triage simulation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BugStatus {
    /// Confirmed by the developers; `fixed` reflects whether a fix landed.
    Confirmed {
        /// Fix landed (41 of the 45 confirmed bugs).
        fixed: bool,
    },
    /// Reported but judged working-as-intended.
    WontFix,
    /// Reported, no developer response yet.
    Pending,
}

/// What the bug makes the solver do when its trigger fires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// Unsoundly conclude `sat` (e.g. a rewrite drops a conflict).
    ForceSat,
    /// Unsoundly conclude `unsat` (e.g. an over-eager simplification).
    ForceUnsat,
    /// Abort with an internal error.
    Panic(&'static str),
    /// Give up with `unknown`.
    ReportUnknown,
}

/// One injected bug.
#[derive(Debug, Clone)]
pub struct InjectedBug {
    /// Stable identifier (unique across both solvers).
    pub id: u32,
    /// Short slug, e.g. `"z-nra-s1"`.
    pub name: &'static str,
    /// Persona the bug lives in.
    pub solver: SolverId,
    /// Fig. 8b class.
    pub class: BugClass,
    /// Fig. 8c logic attribution. The bug only fires on scripts whose
    /// `set-logic` equals this logic (modeling per-theory code paths).
    pub logic: Logic,
    /// Fig. 8a status.
    pub status: BugStatus,
    /// The activating shape.
    pub trigger: Trigger,
    /// Behavior when triggered.
    pub action: Action,
    /// Release names (besides `trunk`) the bug ships in — drives Fig. 10.
    pub releases: &'static [&'static str],
}

impl InjectedBug {
    /// Is this bug active in the given release (trunk always has it)?
    pub fn in_release(&self, release: &str) -> bool {
        release == "trunk" || self.releases.contains(&release)
    }
}

use Trigger::*;

fn all(parts: Vec<Trigger>) -> Trigger {
    All(parts)
}

const Z_OLD: &[&str] = &["4.5.0", "4.6.0", "4.7.1", "4.8.1", "4.8.3", "4.8.4", "4.8.5"];
const Z_484: &[&str] = &["4.8.4", "4.8.5"];
const Z_485: &[&str] = &["4.8.5"];
const Z_REGRESSED: &[&str] = &["4.5.0"];
const Z_TRUNK: &[&str] = &[];
const C_OLD: &[&str] = &["1.5", "1.6", "1.7"];
const C_17: &[&str] = &["1.7"];
const C_REGRESSED: &[&str] = &["1.5"];
const C_TRUNK: &[&str] = &[];

/// The full registry. Order matters: within a persona the first matching
/// bug defines behavior, so more specific triggers come first.
pub fn registry() -> Vec<InjectedBug> {
    use BugClass::*;
    use SolverId::*;
    let fixed = BugStatus::Confirmed { fixed: true };
    let unfixed = BugStatus::Confirmed { fixed: false };
    let mut bugs = Vec::new();
    let mut id = 0u32;
    let mut push = |name: &'static str,
                    solver: SolverId,
                    class: BugClass,
                    logic: Logic,
                    status: BugStatus,
                    trigger: Trigger,
                    action: Action,
                    releases: &'static [&'static str]| {
        id += 1;
        bugs.push(InjectedBug {
            id,
            name,
            solver,
            class,
            logic,
            status,
            trigger,
            action,
            releases,
        });
    };

    // ---- Zirkon (Z3-like): 24 soundness, 11 crash, 1 perf, 1 unknown ----
    // NRA: 9 soundness, 5 crash, 1 unknown (15 confirmed).
    push(
        "z-nra-s1",
        Zirkon,
        Soundness,
        Logic::Nra,
        fixed,
        all(vec![DivByVariable, NestedDivision]),
        Action::ForceSat,
        Z_OLD,
    );
    push(
        "z-nra-s2",
        Zirkon,
        Soundness,
        Logic::Nra,
        fixed,
        all(vec![DivByVariable, IteWithDivision]),
        Action::ForceSat,
        Z_OLD,
    );
    push(
        "z-nra-s3",
        Zirkon,
        Soundness,
        Logic::Nra,
        fixed,
        all(vec![VariableProduct, DivByVariable, EqVarDiv]),
        Action::ForceUnsat,
        Z_OLD,
    );
    push(
        "z-nra-s4",
        Zirkon,
        Soundness,
        Logic::Nra,
        fixed,
        all(vec![EqVarDiv, VariableProduct, LargeNegativeConstant(1)]),
        Action::ForceSat,
        Z_OLD,
    );
    push(
        "z-nra-s5",
        Zirkon,
        Soundness,
        Logic::Nra,
        fixed,
        all(vec![VariableProduct, LargeNegativeConstant(3)]),
        Action::ForceUnsat,
        Z_OLD,
    );
    push(
        "z-nra-s6",
        Zirkon,
        Soundness,
        Logic::Nra,
        fixed,
        all(vec![NestedDivision, VariableProduct]),
        Action::ForceSat,
        Z_484,
    );
    push(
        "z-nra-s7",
        Zirkon,
        Soundness,
        Logic::Nra,
        fixed,
        all(vec![EqVarDiv, LargeNegativeConstant(2)]),
        Action::ForceUnsat,
        Z_484,
    );
    push(
        "z-nra-s8",
        Zirkon,
        Soundness,
        Logic::Nra,
        fixed,
        all(vec![DivByVariable, BigDisjunction(4)]),
        Action::ForceSat,
        Z_484,
    );
    push(
        "z-nra-s9",
        Zirkon,
        Soundness,
        Logic::Nra,
        unfixed,
        all(vec![DivByVariable, ManyAsserts(5)]),
        Action::ForceUnsat,
        Z_485,
    );
    push(
        "z-nra-c1",
        Zirkon,
        Crash,
        Logic::Nra,
        fixed,
        QuantifierWithCmp,
        Action::Panic("Failed to verify: m_util.is_numeral(rhs, _k)"),
        Z_TRUNK,
    );
    push(
        "z-nra-c2",
        Zirkon,
        Crash,
        Logic::Nra,
        fixed,
        all(vec![NestedDivision, LargeNegativeConstant(2)]),
        Action::Panic("ASSERTION VIOLATION: !m_todo.empty()"),
        Z_TRUNK,
    );
    push(
        "z-nra-c3",
        Zirkon,
        Crash,
        Logic::Nra,
        fixed,
        all(vec![IteWithDivision, VariableProduct]),
        Action::Panic("segmentation fault in nlsat::explain"),
        Z_TRUNK,
    );
    push(
        "z-nra-c4",
        Zirkon,
        Crash,
        Logic::Nra,
        fixed,
        all(vec![EqVarDiv, BigDisjunction(6)]),
        Action::Panic("UNREACHABLE executed at arith_rewriter.cpp"),
        Z_TRUNK,
    );
    push(
        "z-nra-c5",
        Zirkon,
        Crash,
        Logic::Nra,
        fixed,
        all(vec![VariableProduct, NestedDivision, ManyAsserts(4)]),
        Action::Panic("index out of bounds in factor_rewriter"),
        Z_TRUNK,
    );
    push(
        "z-nra-u1",
        Zirkon,
        Unknown,
        Logic::Nra,
        fixed,
        all(vec![VariableProduct, ManyAsserts(6)]),
        Action::ReportUnknown,
        Z_TRUNK,
    );
    // NIA: 1 soundness, 1 crash.
    push(
        "z-nia-s1",
        Zirkon,
        Soundness,
        Logic::Nia,
        fixed,
        all(vec![EqVarDiv, ManyAsserts(4)]),
        Action::ForceSat,
        Z_485,
    );
    push(
        "z-nia-c1",
        Zirkon,
        Crash,
        Logic::Nia,
        fixed,
        all(vec![DivByVariable, VariableProduct]),
        Action::Panic("ASSERTION VIOLATION: m_rows[r].size() > 0"),
        Z_TRUNK,
    );
    // QF_NRA: 1 soundness, 1 crash.
    push(
        "z-qfnra-s1",
        Zirkon,
        Soundness,
        Logic::QfNra,
        fixed,
        all(vec![NestedDivision, BigDisjunction(3)]),
        Action::ForceSat,
        Z_REGRESSED,
    );
    push(
        "z-qfnra-c1",
        Zirkon,
        Crash,
        Logic::QfNra,
        fixed,
        all(vec![DivByVariable, LargeNegativeConstant(4)]),
        Action::Panic("segmentation fault (core dumped)"),
        Z_TRUNK,
    );
    // QF_S: 11 soundness, 3 crash, 1 performance.
    push(
        "z-qfs-s1",
        Zirkon,
        Soundness,
        Logic::QfS,
        fixed,
        all(vec![AtOfLen, ToIntOfComposite]),
        Action::ForceSat,
        Z_TRUNK,
    );
    push(
        "z-qfs-s2",
        Zirkon,
        Soundness,
        Logic::QfS,
        fixed,
        all(vec![ReplaceChain, ReplaceWithEmpty]),
        Action::ForceSat,
        Z_REGRESSED,
    );
    push(
        "z-qfs-s3",
        Zirkon,
        Soundness,
        Logic::QfS,
        fixed,
        AffixWithReplace,
        Action::ForceSat,
        Z_REGRESSED,
    );
    push(
        "z-qfs-s4",
        Zirkon,
        Soundness,
        Logic::QfS,
        fixed,
        all(vec![SubstrOfLen, ConcatAndSubstr]),
        Action::ForceUnsat,
        Z_TRUNK,
    );
    push(
        "z-qfs-s5",
        Zirkon,
        Soundness,
        Logic::QfS,
        fixed,
        all(vec![RegexStarPlusArith, ToIntOfComposite]),
        Action::ForceSat,
        Z_TRUNK,
    );
    push(
        "z-qfs-s6",
        Zirkon,
        Soundness,
        Logic::QfS,
        fixed,
        all(vec![IndexOf, ReplaceWithEmpty]),
        Action::ForceUnsat,
        Z_TRUNK,
    );
    push(
        "z-qfs-s7",
        Zirkon,
        Soundness,
        Logic::QfS,
        fixed,
        all(vec![SubstrOfLen, ReplaceChain]),
        Action::ForceSat,
        Z_TRUNK,
    );
    push(
        "z-qfs-s8",
        Zirkon,
        Soundness,
        Logic::QfS,
        fixed,
        all(vec![AtOfLen, ConcatAndSubstr]),
        Action::ForceUnsat,
        Z_TRUNK,
    );
    push(
        "z-qfs-s9",
        Zirkon,
        Soundness,
        Logic::QfS,
        unfixed,
        all(vec![IndexOf, SubstrOfLen]),
        Action::ForceSat,
        Z_TRUNK,
    );
    push(
        "z-qfs-s10",
        Zirkon,
        Soundness,
        Logic::QfS,
        fixed,
        all(vec![RegexStarPlusArith, ReplaceWithEmpty]),
        Action::ForceUnsat,
        Z_TRUNK,
    );
    push(
        "z-qfs-s11",
        Zirkon,
        Soundness,
        Logic::QfS,
        fixed,
        all(vec![ToIntOfComposite, ReplaceWithEmpty]),
        Action::ForceSat,
        Z_TRUNK,
    );
    push(
        "z-qfs-c1",
        Zirkon,
        Crash,
        Logic::QfS,
        fixed,
        all(vec![ReplaceChain, IndexOf]),
        Action::Panic("ASSERTION VIOLATION: offset >= 0 in seq_rewriter"),
        Z_TRUNK,
    );
    push(
        "z-qfs-c2",
        Zirkon,
        Crash,
        Logic::QfS,
        fixed,
        all(vec![AtOfLen, RegexStarPlusArith]),
        Action::Panic("segmentation fault in z3str3::theory_str"),
        Z_TRUNK,
    );
    push(
        "z-qfs-c3",
        Zirkon,
        Crash,
        Logic::QfS,
        fixed,
        all(vec![SubstrOfLen, ManyAsserts(6)]),
        Action::Panic("out of memory in re2automaton"),
        Z_TRUNK,
    );
    push(
        "z-qfs-p1",
        Zirkon,
        Performance,
        Logic::QfS,
        fixed,
        all(vec![RegexStarPlusArith, ConcatAndSubstr]),
        Action::ReportUnknown,
        Z_TRUNK,
    );
    // QF_SLIA: 2 soundness, 1 crash.
    push(
        "z-qfslia-s1",
        Zirkon,
        Soundness,
        Logic::QfSlia,
        fixed,
        all(vec![StringIntMix, SubstrOfLen]),
        Action::ForceSat,
        Z_TRUNK,
    );
    push(
        "z-qfslia-s2",
        Zirkon,
        Soundness,
        Logic::QfSlia,
        fixed,
        all(vec![StringIntMix, IndexOf]),
        Action::ForceUnsat,
        Z_TRUNK,
    );
    push(
        "z-qfslia-c1",
        Zirkon,
        Crash,
        Logic::QfSlia,
        fixed,
        all(vec![StringIntMix, ReplaceChain]),
        Action::Panic("unexpected sort mismatch in seq_axioms"),
        Z_TRUNK,
    );
    // Zirkon report-only entries (won't fix / pending).
    push(
        "z-wf1",
        Zirkon,
        Performance,
        Logic::Nra,
        BugStatus::WontFix,
        BigDisjunction(10),
        Action::ReportUnknown,
        Z_TRUNK,
    );
    push(
        "z-wf2",
        Zirkon,
        Performance,
        Logic::QfS,
        BugStatus::WontFix,
        ManyAsserts(12),
        Action::ReportUnknown,
        Z_TRUNK,
    );
    push(
        "z-pend1",
        Zirkon,
        Soundness,
        Logic::Nia,
        BugStatus::Pending,
        all(vec![VariableProduct, LargeNegativeConstant(3)]),
        Action::ForceSat,
        Z_TRUNK,
    );

    // ---- Corvus (CVC4-like): 5 soundness, 1 crash, 2 performance ----
    push(
        "c-qfs-s1",
        Corvus,
        Soundness,
        Logic::QfS,
        fixed,
        all(vec![ToIntOfComposite, ReplaceChain]),
        Action::ForceSat,
        C_OLD,
    );
    push(
        "c-qfs-s2",
        Corvus,
        Soundness,
        Logic::QfS,
        fixed,
        all(vec![SubstrOfLen, RegexStarPlusArith]),
        Action::ForceUnsat,
        C_17,
    );
    push(
        "c-qfs-s3",
        Corvus,
        Soundness,
        Logic::QfS,
        unfixed,
        all(vec![AtOfLen, IndexOf]),
        Action::ForceSat,
        C_TRUNK,
    );
    push(
        "c-qfs-c1",
        Corvus,
        Crash,
        Logic::QfS,
        fixed,
        all(vec![ReplaceWithEmpty, ConcatAndSubstr]),
        Action::Panic("Unhandled case in TheoryStringsRewriter"),
        C_TRUNK,
    );
    push(
        "c-qfslia-s1",
        Corvus,
        Soundness,
        Logic::QfSlia,
        fixed,
        all(vec![StringIntMix, AtOfLen]),
        Action::ForceSat,
        C_REGRESSED,
    );
    push(
        "c-nia-s1",
        Corvus,
        Soundness,
        Logic::Nia,
        unfixed,
        all(vec![EqVarDiv, IteWithDivision]),
        Action::ForceUnsat,
        C_TRUNK,
    );
    push(
        "c-nra-p1",
        Corvus,
        Performance,
        Logic::Nra,
        fixed,
        all(vec![NestedDivision, VariableProduct, ManyAsserts(4)]),
        Action::ReportUnknown,
        C_TRUNK,
    );
    push(
        "c-qfnia-p1",
        Corvus,
        Performance,
        Logic::QfNia,
        fixed,
        all(vec![DivByVariable, EqVarDiv]),
        Action::ReportUnknown,
        C_TRUNK,
    );
    // Corvus pending reports.
    push(
        "c-pend1",
        Corvus,
        Soundness,
        Logic::QfS,
        BugStatus::Pending,
        all(vec![IndexOf, RegexStarPlusArith]),
        Action::ForceUnsat,
        C_TRUNK,
    );
    push(
        "c-pend2",
        Corvus,
        Soundness,
        Logic::QfSlia,
        BugStatus::Pending,
        all(vec![StringIntMix, ReplaceWithEmpty]),
        Action::ForceSat,
        C_TRUNK,
    );
    push(
        "c-pend3",
        Corvus,
        Crash,
        Logic::QfNra,
        BugStatus::Pending,
        all(vec![IteWithDivision, NestedDivision]),
        Action::Panic("Assertion failure in nl_model"),
        C_TRUNK,
    );
    push(
        "c-pend4",
        Corvus,
        Performance,
        Logic::QfLra,
        BugStatus::Pending,
        all(vec![BigDisjunction(8), ManyAsserts(3)]),
        Action::ReportUnknown,
        C_TRUNK,
    );

    bugs
}

/// Bugs of one persona, in firing order.
pub fn bugs_of(solver: SolverId) -> Vec<InjectedBug> {
    registry().into_iter().filter(|b| b.solver == solver).collect()
}

/// Release names of a persona, oldest first, ending in `"trunk"`.
pub fn releases_of(solver: SolverId) -> Vec<&'static str> {
    match solver {
        SolverId::Zirkon => {
            vec!["4.5.0", "4.6.0", "4.7.1", "4.8.1", "4.8.3", "4.8.4", "4.8.5", "trunk"]
        }
        SolverId::Corvus => vec!["1.5", "1.6", "1.7", "trunk"],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn confirmed(solver: SolverId) -> Vec<InjectedBug> {
        bugs_of(solver)
            .into_iter()
            .filter(|b| matches!(b.status, BugStatus::Confirmed { .. }))
            .collect()
    }

    #[test]
    fn totals_match_fig8a() {
        // Confirmed: 37 + 8 = 45. Fixed: 41.
        assert_eq!(confirmed(SolverId::Zirkon).len(), 37);
        assert_eq!(confirmed(SolverId::Corvus).len(), 8);
        let fixed = registry()
            .iter()
            .filter(|b| matches!(b.status, BugStatus::Confirmed { fixed: true }))
            .count();
        assert_eq!(fixed, 41);
        // Won't fix: 2 (all Zirkon), pending: 1 + 4.
        let wf = registry().iter().filter(|b| b.status == BugStatus::WontFix).count();
        assert_eq!(wf, 2);
        let pend_z =
            bugs_of(SolverId::Zirkon).iter().filter(|b| b.status == BugStatus::Pending).count();
        let pend_c =
            bugs_of(SolverId::Corvus).iter().filter(|b| b.status == BugStatus::Pending).count();
        assert_eq!((pend_z, pend_c), (1, 4));
    }

    #[test]
    fn from_name_accepts_bare_and_release_spellings() {
        assert_eq!(SolverId::from_name("zirkon"), Some(SolverId::Zirkon));
        assert_eq!(SolverId::from_name("zirkon-trunk"), Some(SolverId::Zirkon));
        assert_eq!(SolverId::from_name("corvus-1.5"), Some(SolverId::Corvus));
        assert_eq!(SolverId::from_name("corvusx"), None, "no separator, no match");
        assert_eq!(SolverId::from_name("z3"), None);
        assert_eq!(SolverId::from_name(""), None);
    }

    #[test]
    fn classes_match_fig8b() {
        let count = |s, c| confirmed(s).iter().filter(|b| b.class == c).count();
        assert_eq!(count(SolverId::Zirkon, BugClass::Soundness), 24);
        assert_eq!(count(SolverId::Zirkon, BugClass::Crash), 11);
        assert_eq!(count(SolverId::Zirkon, BugClass::Performance), 1);
        assert_eq!(count(SolverId::Zirkon, BugClass::Unknown), 1);
        assert_eq!(count(SolverId::Corvus, BugClass::Soundness), 5);
        assert_eq!(count(SolverId::Corvus, BugClass::Crash), 1);
        assert_eq!(count(SolverId::Corvus, BugClass::Performance), 2);
        assert_eq!(count(SolverId::Corvus, BugClass::Unknown), 0);
    }

    #[test]
    fn logics_match_fig8c() {
        let mut z: BTreeMap<Logic, usize> = BTreeMap::new();
        for b in confirmed(SolverId::Zirkon) {
            *z.entry(b.logic).or_default() += 1;
        }
        assert_eq!(z.get(&Logic::Nia), Some(&2));
        assert_eq!(z.get(&Logic::Nra), Some(&15));
        assert_eq!(z.get(&Logic::QfNra), Some(&2));
        assert_eq!(z.get(&Logic::QfS), Some(&15));
        assert_eq!(z.get(&Logic::QfSlia), Some(&3));
        let mut c: BTreeMap<Logic, usize> = BTreeMap::new();
        for b in confirmed(SolverId::Corvus) {
            *c.entry(b.logic).or_default() += 1;
        }
        assert_eq!(c.get(&Logic::Nia), Some(&1));
        assert_eq!(c.get(&Logic::Nra), Some(&1));
        assert_eq!(c.get(&Logic::QfNia), Some(&1));
        assert_eq!(c.get(&Logic::QfS), Some(&4));
        assert_eq!(c.get(&Logic::QfSlia), Some(&1));
    }

    #[test]
    fn release_counts_match_fig10() {
        // Found soundness bugs affecting each release: Z3-like
        // [8,5,5,5,5,8,10,24], CVC4-like [2,1,2,5].
        let soundness = |s: SolverId| -> Vec<InjectedBug> {
            confirmed(s).into_iter().filter(|b| b.class == BugClass::Soundness).collect()
        };
        let z = soundness(SolverId::Zirkon);
        let expect_z = [
            ("4.5.0", 8),
            ("4.6.0", 5),
            ("4.7.1", 5),
            ("4.8.1", 5),
            ("4.8.3", 5),
            ("4.8.4", 8),
            ("4.8.5", 10),
            ("trunk", 24),
        ];
        for (rel, n) in expect_z {
            assert_eq!(z.iter().filter(|b| b.in_release(rel)).count(), n, "zirkon {rel}");
        }
        let c = soundness(SolverId::Corvus);
        for (rel, n) in [("1.5", 2), ("1.6", 1), ("1.7", 2), ("trunk", 5)] {
            assert_eq!(c.iter().filter(|b| b.in_release(rel)).count(), n, "corvus {rel}");
        }
    }

    #[test]
    fn ids_are_unique() {
        let bugs = registry();
        let mut ids: Vec<u32> = bugs.iter().map(|b| b.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), bugs.len());
        assert_eq!(bugs.len(), 52, "45 confirmed + 2 wontfix + 5 pending");
    }

    #[test]
    fn soundness_bugs_have_flip_actions() {
        for b in registry() {
            match b.class {
                BugClass::Soundness => {
                    assert!(matches!(b.action, Action::ForceSat | Action::ForceUnsat), "{}", b.name)
                }
                BugClass::Crash => {
                    assert!(matches!(b.action, Action::Panic(_)), "{}", b.name)
                }
                BugClass::Performance | BugClass::Unknown => {
                    assert!(matches!(b.action, Action::ReportUnknown), "{}", b.name)
                }
            }
        }
    }
}
