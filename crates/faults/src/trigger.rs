//! Trigger predicates: the formula shapes that activate injected bugs.
//!
//! Real solver bugs hide in specific code paths — a rewrite for `str.replace`
//! of a `str.at`, the `div`-by-variable lowering, the lemma generation for
//! products. Triggers model those paths as syntactic predicates over the
//! input script. Fusion-made shapes (inversion terms, fusion constraints)
//! dominate, reproducing RQ4's observation that plain concatenation rarely
//! reaches them.

use yinyang_smtlib::{Op, Script, Term, TermKind};

/// A syntactic bug trigger.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Trigger {
    /// `(div t v)` or `(/ t v)` with a variable divisor — the inversion
    /// terms of multiplicative fusion.
    DivByVariable,
    /// A product of two or more distinct variables — fusion constraints
    /// `z = x·y`.
    VariableProduct,
    /// `str.substr` whose offset or length is a `str.len` term — the string
    /// inversion functions.
    SubstrOfLen,
    /// `str.replace` nested inside another `str.replace` — the
    /// `x ++ c ++ y` inversion chain.
    ReplaceChain,
    /// `str.replace` whose replacement string is empty.
    ReplaceWithEmpty,
    /// `str.to_int` applied to a non-variable (composite) term —
    /// Fig. 13a/13b's missed corner case.
    ToIntOfComposite,
    /// `str.in_re` of a starred regex together with an arithmetic atom.
    RegexStarPlusArith,
    /// `(str.at t i)` where `i` is itself a `str.len` term (Fig. 13a).
    AtOfLen,
    /// An `ite` whose condition mentions division (Fig. 13c).
    IteWithDivision,
    /// A comparison chain under a quantifier (Fig. 13f's crash path).
    QuantifierWithCmp,
    /// Division nested inside division — `(/ a (/ c e))` (Fig. 13c).
    NestedDivision,
    /// An equality between a variable and a `div`/`/` term — the fusion
    /// constraint `x = rx(y, z)`.
    EqVarDiv,
    /// `str.++` and `str.substr` both present — SAT string fusion residue.
    ConcatAndSubstr,
    /// `str.indexof` anywhere.
    IndexOf,
    /// `str.prefixof`/`str.suffixof` together with `str.replace`
    /// (Fig. 13e's incorrect prefixof/suffixof implementation).
    AffixWithReplace,
    /// `mod` by anything other than a positive literal.
    OddMod,
    /// Shallow: a disjunction with at least `n` direct conjuncts inside —
    /// plain formula concatenation reaches this (the RQ4 5/50 fraction).
    BigDisjunction(usize),
    /// Shallow: at least `n` assertions in the script.
    ManyAsserts(usize),
    /// Negative integer or real literal below `-bound` appearing anywhere
    /// (fusion constants can be drawn large).
    LargeNegativeConstant(i64),
    /// Both string and integer atoms present (QF_SLIA mixing paths).
    StringIntMix,
    /// Conjunction of triggers: all must match the script.
    All(Vec<Trigger>),
}

impl Trigger {
    /// Does the script contain this trigger's shape?
    pub fn matches(&self, script: &Script) -> bool {
        let asserts = script.asserts();
        match self {
            Trigger::All(parts) => parts.iter().all(|t| t.matches(script)),
            Trigger::ManyAsserts(n) => asserts.len() >= *n,
            Trigger::BigDisjunction(n) => asserts.iter().any(|a| {
                contains(a, &|t| match t.kind() {
                    TermKind::App(Op::Or, args) => {
                        let conjuncts: usize = args
                            .iter()
                            .map(|d| match d.kind() {
                                TermKind::App(Op::And, inner) => inner.len(),
                                _ => 1,
                            })
                            .sum();
                        conjuncts >= *n
                    }
                    _ => false,
                })
            }),
            _ => asserts.iter().any(|a| self.matches_term(a)),
        }
    }

    fn matches_term(&self, term: &Term) -> bool {
        match self {
            Trigger::DivByVariable => contains(term, &|t| match t.kind() {
                TermKind::App(Op::IntDiv | Op::RealDiv, args) => {
                    args[1..].iter().any(|d| matches!(d.kind(), TermKind::Var(_)))
                }
                _ => false,
            }),
            Trigger::VariableProduct => contains(term, &|t| match t.kind() {
                TermKind::App(Op::Mul, args) => {
                    let vars: Vec<_> = args
                        .iter()
                        .filter_map(|a| match a.kind() {
                            TermKind::Var(v) => Some(v.clone()),
                            _ => None,
                        })
                        .collect();
                    vars.len() >= 2
                }
                _ => false,
            }),
            Trigger::SubstrOfLen => contains(term, &|t| match t.kind() {
                TermKind::App(Op::StrSubstr, args) => args[1..]
                    .iter()
                    .any(|a| contains(a, &|s| matches!(s.kind(), TermKind::App(Op::StrLen, _)))),
                _ => false,
            }),
            Trigger::ReplaceChain => contains(term, &|t| match t.kind() {
                TermKind::App(Op::StrReplace, args) => args.iter().any(|a| {
                    contains(a, &|s| matches!(s.kind(), TermKind::App(Op::StrReplace, _)))
                }),
                _ => false,
            }),
            Trigger::ReplaceWithEmpty => contains(term, &|t| match t.kind() {
                TermKind::App(Op::StrReplace, args) => {
                    matches!(args[2].kind(), TermKind::StringConst(s) if s.is_empty())
                }
                _ => false,
            }),
            Trigger::ToIntOfComposite => contains(term, &|t| match t.kind() {
                TermKind::App(Op::StrToInt, args) => {
                    !matches!(args[0].kind(), TermKind::Var(_) | TermKind::StringConst(_))
                }
                _ => false,
            }),
            Trigger::RegexStarPlusArith => {
                let has_star =
                    contains(term, &|t| matches!(t.kind(), TermKind::App(Op::ReStar, _)));
                let has_arith = contains(term, &|t| {
                    matches!(
                        t.kind(),
                        TermKind::App(Op::Le | Op::Lt | Op::Ge | Op::Gt | Op::StrToInt, _)
                    )
                });
                has_star && has_arith
            }
            Trigger::AtOfLen => contains(term, &|t| match t.kind() {
                TermKind::App(Op::StrAt, args) => {
                    contains(&args[1], &|s| matches!(s.kind(), TermKind::App(Op::StrLen, _)))
                }
                _ => false,
            }),
            Trigger::IteWithDivision => contains(term, &|t| match t.kind() {
                TermKind::App(Op::Ite, args) => contains(&args[0], &|s| {
                    matches!(s.kind(), TermKind::App(Op::RealDiv | Op::IntDiv, _))
                }),
                _ => false,
            }),
            Trigger::QuantifierWithCmp => contains(term, &|t| match t.kind() {
                TermKind::Quant(_, _, body) => {
                    contains(body, &|s| matches!(s.kind(), TermKind::App(Op::Le | Op::Ge, _)))
                }
                _ => false,
            }),
            Trigger::NestedDivision => contains(term, &|t| match t.kind() {
                TermKind::App(Op::RealDiv | Op::IntDiv, args) => args.iter().any(|a| {
                    contains(a, &|s| matches!(s.kind(), TermKind::App(Op::RealDiv | Op::IntDiv, _)))
                }),
                _ => false,
            }),
            Trigger::EqVarDiv => contains(term, &|t| match t.kind() {
                TermKind::App(Op::Eq, args) if args.len() == 2 => {
                    let var_side = args.iter().any(|a| matches!(a.kind(), TermKind::Var(_)));
                    let div_side = args
                        .iter()
                        .any(|a| matches!(a.kind(), TermKind::App(Op::RealDiv | Op::IntDiv, _)));
                    var_side && div_side
                }
                _ => false,
            }),
            Trigger::ConcatAndSubstr => {
                contains(term, &|t| matches!(t.kind(), TermKind::App(Op::StrConcat, _)))
                    && contains(term, &|t| matches!(t.kind(), TermKind::App(Op::StrSubstr, _)))
            }
            Trigger::IndexOf => {
                contains(term, &|t| matches!(t.kind(), TermKind::App(Op::StrIndexOf, _)))
            }
            Trigger::AffixWithReplace => {
                let affix = contains(term, &|t| {
                    matches!(t.kind(), TermKind::App(Op::StrPrefixOf | Op::StrSuffixOf, _))
                });
                let replace =
                    contains(term, &|t| matches!(t.kind(), TermKind::App(Op::StrReplace, _)));
                affix && replace
            }
            Trigger::OddMod => contains(term, &|t| match t.kind() {
                TermKind::App(Op::Mod, args) => !matches!(
                    args[1].kind(),
                    TermKind::IntConst(v) if v.is_positive()
                ),
                _ => false,
            }),
            Trigger::LargeNegativeConstant(bound) => contains(term, &|t| match t.kind() {
                TermKind::IntConst(v) => v < &yinyang_arith::BigInt::from(-*bound),
                TermKind::RealConst(v) => v < &yinyang_arith::BigRational::from(-*bound),
                _ => false,
            }),
            Trigger::StringIntMix => {
                let has_str = contains(term, &|t| {
                    matches!(t.kind(), TermKind::App(Op::StrLen | Op::StrToInt, _))
                });
                let has_arith = contains(term, &|t| {
                    matches!(t.kind(), TermKind::App(Op::Add | Op::Sub | Op::Mul, _))
                });
                has_str && has_arith
            }
            Trigger::BigDisjunction(_) | Trigger::ManyAsserts(_) | Trigger::All(_) => false,
        }
    }
}

/// Does any subterm satisfy `pred`?
fn contains(term: &Term, pred: &dyn Fn(&Term) -> bool) -> bool {
    let mut p = |t: &Term| pred(t);
    term.any_subterm(&mut p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use yinyang_smtlib::parse_script;

    fn script(src: &str) -> Script {
        parse_script(src).unwrap()
    }

    #[test]
    fn div_by_variable() {
        let s = script("(declare-fun z () Int) (declare-fun y () Int) (assert (= (div z y) 1))");
        assert!(Trigger::DivByVariable.matches(&s));
        let c = script("(declare-fun z () Int) (assert (= (div z 2) 1))");
        assert!(!Trigger::DivByVariable.matches(&c));
    }

    #[test]
    fn variable_product() {
        let s = script("(declare-fun x () Int) (declare-fun y () Int) (assert (= (* x y) 6))");
        assert!(Trigger::VariableProduct.matches(&s));
        let c = script("(declare-fun x () Int) (assert (= (* 2 x) 6))");
        assert!(!Trigger::VariableProduct.matches(&c));
    }

    #[test]
    fn substr_of_len() {
        let s = script(
            "(declare-fun z () String) (declare-fun x () String)
             (assert (= x (str.substr z 0 (str.len x))))",
        );
        assert!(Trigger::SubstrOfLen.matches(&s));
        assert!(Trigger::EqVarDiv.matches(&script(
            "(declare-fun x () Int) (declare-fun z () Int) (declare-fun y () Int)
             (assert (= x (div z y)))"
        )));
    }

    #[test]
    fn replace_chain_and_empty() {
        let s = script(
            r#"(declare-fun z () String) (declare-fun x () String)
               (assert (= "" (str.replace (str.replace z x "") "c" "q")))"#,
        );
        assert!(Trigger::ReplaceChain.matches(&s));
        assert!(Trigger::ReplaceWithEmpty.matches(&s));
        let single =
            script(r#"(declare-fun z () String) (assert (= "a" (str.replace z "b" "c")))"#);
        assert!(!Trigger::ReplaceChain.matches(&single));
        assert!(!Trigger::ReplaceWithEmpty.matches(&single));
    }

    #[test]
    fn fig13a_shape_triggers() {
        // The paper's Fig. 13a formula.
        let s = script(
            r#"(declare-fun a () String) (declare-fun b () String) (declare-fun c () String)
               (assert (and (str.in_re c (re.* (str.to_re "aa")))
                            (= 0 (str.to_int (str.replace a b (str.at a (str.len a)))))))
               (assert (= a (str.++ b c)))"#,
        );
        assert!(Trigger::AtOfLen.matches(&s));
        assert!(Trigger::ToIntOfComposite.matches(&s));
        assert!(Trigger::RegexStarPlusArith.matches(&s));
    }

    #[test]
    fn fig13c_shape_triggers() {
        let s = script(
            "(declare-fun a () Real) (declare-fun c () Real) (declare-fun e () Real)
             (declare-fun d () Real) (declare-fun f () Real) (declare-fun b () Real)
             (assert (and (> 0 (- d f))
                          (= d (ite (>= (/ a c) f) (+ b f) f))
                          (> 0 (/ a (/ c e)))))",
        );
        assert!(Trigger::IteWithDivision.matches(&s));
        assert!(Trigger::NestedDivision.matches(&s));
    }

    #[test]
    fn fig13f_quantifier_cmp() {
        let s = script(
            "(declare-fun a () Real) (declare-fun h2 () Real)
             (assert (exists ((h Real)) (<= 0.0 (/ a h))))",
        );
        assert!(Trigger::QuantifierWithCmp.matches(&s));
    }

    #[test]
    fn shallow_triggers_fire_on_concatenation_shapes() {
        let s = script(
            "(declare-fun a () Int) (declare-fun b () Int)
             (assert (or (and (> a 0) (< a 0) (= a 1)) (and (> b 1) (< b 1) (= b 0))))",
        );
        assert!(Trigger::BigDisjunction(5).matches(&s));
        assert!(!Trigger::BigDisjunction(9).matches(&s));
        let many = script(
            "(declare-fun a () Int)
             (assert (> a 0)) (assert (> a 1)) (assert (> a 2))
             (assert (> a 3)) (assert (> a 4)) (assert (> a 5))",
        );
        assert!(Trigger::ManyAsserts(6).matches(&many));
        assert!(!Trigger::ManyAsserts(7).matches(&many));
    }

    #[test]
    fn odd_mod() {
        assert!(Trigger::OddMod.matches(&script(
            "(declare-fun a () Int) (declare-fun b () Int) (assert (= (mod a b) 0))"
        )));
        assert!(
            Trigger::OddMod.matches(&script("(declare-fun a () Int) (assert (= (mod a (- 3)) 0))"))
        );
        assert!(
            !Trigger::OddMod.matches(&script("(declare-fun a () Int) (assert (= (mod a 3) 0))"))
        );
    }

    #[test]
    fn affix_with_replace_fig13e() {
        let s = script(
            r#"(declare-fun c () String) (declare-fun d () String)
               (assert (not (= (str.suffixof "A" d)
                               (str.suffixof "A" (str.replace c c d)))))"#,
        );
        assert!(Trigger::AffixWithReplace.matches(&s));
    }

    #[test]
    fn all_combinator() {
        let s = script(
            "(declare-fun z () Int) (declare-fun y () Int)
             (assert (= (div z y) (* z y)))",
        );
        assert!(Trigger::All(vec![Trigger::DivByVariable, Trigger::VariableProduct]).matches(&s));
        assert!(!Trigger::All(vec![Trigger::DivByVariable, Trigger::IndexOf]).matches(&s));
    }

    #[test]
    fn large_negative_constant() {
        assert!(Trigger::LargeNegativeConstant(4)
            .matches(&script("(declare-fun a () Int) (assert (> a (- 7)))")));
        assert!(!Trigger::LargeNegativeConstant(10)
            .matches(&script("(declare-fun a () Int) (assert (> a (- 7)))")));
    }

    #[test]
    fn every_trigger_variant_has_positive_and_negative_witness() {
        // (trigger, positive witness, negative witness)
        let neutral = "(declare-fun q () Int) (assert (= q 1))";
        let cases: Vec<(Trigger, &str, &str)> = vec![
            (
                Trigger::SubstrOfLen,
                r#"(declare-fun z () String) (declare-fun x () String)
                   (assert (= x (str.substr z 0 (str.len x))))"#,
                r#"(declare-fun z () String) (assert (= "a" (str.substr z 0 2)))"#,
            ),
            (
                Trigger::ToIntOfComposite,
                r#"(declare-fun a () String) (assert (= 0 (str.to_int (str.++ a "x"))))"#,
                r#"(declare-fun a () String) (assert (= 0 (str.to_int a)))"#,
            ),
            (
                Trigger::RegexStarPlusArith,
                r#"(declare-fun c () String)
                   (assert (and (str.in_re c (re.* (str.to_re "a"))) (> (str.len c) 1)))"#,
                r#"(declare-fun c () String) (assert (str.in_re c (re.* (str.to_re "a"))))"#,
            ),
            (
                Trigger::ConcatAndSubstr,
                r#"(declare-fun a () String) (declare-fun b () String)
                   (assert (= (str.++ a b) (str.substr a 0 1)))"#,
                r#"(declare-fun a () String) (declare-fun b () String)
                   (assert (= (str.++ a b) "xy"))"#,
            ),
            (
                Trigger::IndexOf,
                r#"(declare-fun a () String) (assert (= (str.indexof a "x" 0) 1))"#,
                neutral,
            ),
            (
                Trigger::NestedDivision,
                "(declare-fun a () Real) (declare-fun c () Real) (declare-fun e () Real)
                 (assert (> 0 (/ a (/ c e))))",
                "(declare-fun a () Real) (declare-fun c () Real)
                 (assert (> 0 (/ a c)))",
            ),
            (
                Trigger::EqVarDiv,
                "(declare-fun x () Int) (declare-fun z () Int) (declare-fun y () Int)
                 (assert (= x (div z y)))",
                "(declare-fun x () Int) (declare-fun z () Int) (declare-fun y () Int)
                 (assert (= (+ x 1) (div z y)))",
            ),
            (
                Trigger::IteWithDivision,
                "(declare-fun a () Real) (declare-fun c () Real) (declare-fun d () Real)
                 (assert (= d (ite (>= (/ a c) 0.0) 1.0 2.0)))",
                "(declare-fun a () Real) (declare-fun d () Real)
                 (assert (= d (ite (>= a 0.0) 1.0 2.0)))",
            ),
            (
                Trigger::QuantifierWithCmp,
                "(declare-fun a () Real) (assert (exists ((h Real)) (<= h a)))",
                "(declare-fun a () Real) (assert (exists ((h Real)) (= h a)))",
            ),
            (
                Trigger::StringIntMix,
                r#"(declare-fun s () String) (declare-fun n () Int)
                   (assert (= (+ (str.len s) 1) n))"#,
                r#"(declare-fun s () String) (assert (= (str.len s) 2))"#,
            ),
            (
                Trigger::VariableProduct,
                "(declare-fun x () Int) (declare-fun y () Int) (assert (= (* x y) 1))",
                "(declare-fun x () Int) (assert (= (* x 3) 1))",
            ),
            (
                Trigger::DivByVariable,
                "(declare-fun z () Int) (declare-fun y () Int) (assert (= (div z y) 1))",
                "(declare-fun z () Int) (assert (= (div z 4) 1))",
            ),
            (
                Trigger::ReplaceChain,
                r#"(declare-fun z () String)
                   (assert (= "" (str.replace (str.replace z "a" "b") "c" "d")))"#,
                r#"(declare-fun z () String) (assert (= "" (str.replace z "a" "b")))"#,
            ),
            (
                Trigger::ReplaceWithEmpty,
                r#"(declare-fun z () String) (assert (= "" (str.replace z "a" "")))"#,
                r#"(declare-fun z () String) (assert (= "" (str.replace z "a" "b")))"#,
            ),
            (
                Trigger::AtOfLen,
                r#"(declare-fun a () String) (assert (= "x" (str.at a (str.len a))))"#,
                r#"(declare-fun a () String) (assert (= "x" (str.at a 0)))"#,
            ),
            (
                Trigger::AffixWithReplace,
                r#"(declare-fun c () String) (declare-fun d () String)
                   (assert (= (str.suffixof "A" d) (str.suffixof "A" (str.replace c c d))))"#,
                r#"(declare-fun d () String) (assert (str.suffixof "A" d))"#,
            ),
            (
                Trigger::OddMod,
                "(declare-fun a () Int) (declare-fun b () Int) (assert (= (mod a b) 0))",
                "(declare-fun a () Int) (assert (= (mod a 5) 0))",
            ),
            (
                Trigger::LargeNegativeConstant(4),
                "(declare-fun a () Int) (assert (> a (- 9)))",
                "(declare-fun a () Int) (assert (> a (- 2)))",
            ),
            (
                Trigger::BigDisjunction(4),
                "(declare-fun a () Int)
                 (assert (or (and (> a 0) (< a 9)) (and (> a 10) (< a 20))))",
                "(declare-fun a () Int) (assert (or (> a 0) (< a 9)))",
            ),
            (
                Trigger::ManyAsserts(3),
                "(declare-fun a () Int) (assert (> a 0)) (assert (> a 1)) (assert (> a 2))",
                "(declare-fun a () Int) (assert (> a 0))",
            ),
            (
                Trigger::All(vec![Trigger::IndexOf, Trigger::ReplaceWithEmpty]),
                r#"(declare-fun a () String)
                   (assert (= (str.indexof (str.replace a "x" "") "y" 0) 1))"#,
                r#"(declare-fun a () String) (assert (= (str.indexof a "y" 0) 1))"#,
            ),
        ];
        for (trigger, pos, neg) in cases {
            let pos_script = script(pos);
            let neg_script = script(neg);
            assert!(trigger.matches(&pos_script), "{trigger:?} missed its positive witness");
            assert!(!trigger.matches(&neg_script), "{trigger:?} fired on its negative witness");
        }
    }
}
