//! Probe-point coverage instrumentation — the workspace's Gcov substitute.
//!
//! The paper's RQ3 measures line/function/branch coverage of the solvers
//! under different input sets with Gcov. Our solver is instrumented with
//! *probe points* instead: macros that record a hit in a global map, tagged
//! with a [`ProbeKind`] mirroring Gcov's three metrics.
//!
//! * [`probe_fn!`] at function entry → function coverage;
//! * [`probe_branch!`] around a condition → branch coverage (both arms are
//!   distinct probes);
//! * [`probe_line!`] at interesting statements → line coverage.
//!
//! Coverage percentages are computed against the *registry* of all probes
//! that fired in any run of the process (a union denominator), which is
//! exactly the relative comparison Fig. 11 and Fig. 12 make.
//!
//! # Examples
//!
//! ```
//! use yinyang_coverage::{probe_fn, snapshot, reset, CoverageSnapshot};
//!
//! reset();
//! fn solve_something() {
//!     probe_fn!("example::solve_something");
//! }
//! solve_something();
//! let snap = snapshot();
//! assert_eq!(snap.hits_of_kind(yinyang_coverage::ProbeKind::Function), 1);
//! ```

#![warn(missing_docs)]

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Mutex;
use std::sync::OnceLock;

/// The three Gcov-style metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ProbeKind {
    /// Statement/line probes.
    Line,
    /// Function-entry probes.
    Function,
    /// Branch-arm probes (taken / not-taken are separate sites).
    Branch,
}

impl ProbeKind {
    /// All kinds, in display order.
    pub const ALL: [ProbeKind; 3] = [ProbeKind::Line, ProbeKind::Function, ProbeKind::Branch];

    /// Short label used in tables (`l`, `f`, `b`).
    pub fn label(self) -> &'static str {
        match self {
            ProbeKind::Line => "l",
            ProbeKind::Function => "f",
            ProbeKind::Branch => "b",
        }
    }

    /// Inverse of [`ProbeKind::label`].
    pub fn from_label(label: &str) -> Option<ProbeKind> {
        match label {
            "l" => Some(ProbeKind::Line),
            "f" => Some(ProbeKind::Function),
            "b" => Some(ProbeKind::Branch),
            _ => None,
        }
    }
}

/// A probe site: a static name plus kind. Branch probes append `/t` or `/f`.
pub type SiteKey = (&'static str, ProbeKind, bool);

#[derive(Default)]
struct State {
    /// Sites hit since the last [`reset`], with hit counts.
    hits: BTreeMap<SiteKey, u64>,
    /// Every site ever observed in this process — the denominator universe.
    universe: BTreeSet<SiteKey>,
}

fn state() -> &'static Mutex<State> {
    static STATE: OnceLock<Mutex<State>> = OnceLock::new();
    STATE.get_or_init(|| Mutex::new(State::default()))
}

/// Records a hit. Usually called through the probe macros.
pub fn record(name: &'static str, kind: ProbeKind, arm: bool) {
    let mut s = state().lock().expect("coverage state poisoned");
    let key = (name, kind, arm);
    *s.hits.entry(key).or_insert(0) += 1;
    s.universe.insert(key);
}

/// Clears per-run hits (the universe of known sites is retained).
pub fn reset() {
    state().lock().expect("coverage state poisoned").hits.clear();
}

/// An immutable snapshot of coverage state.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CoverageSnapshot {
    hits: BTreeMap<SiteKey, u64>,
}

impl CoverageSnapshot {
    /// Sites hit, by kind.
    pub fn hits_of_kind(&self, kind: ProbeKind) -> usize {
        self.hits.keys().filter(|(_, k, _)| *k == kind).count()
    }

    /// Total hit count (including repeats) for all sites of a kind.
    pub fn count_of_kind(&self, kind: ProbeKind) -> u64 {
        self.hits.iter().filter(|((_, k, _), _)| *k == kind).map(|(_, c)| c).sum()
    }

    /// The set of distinct sites hit.
    pub fn sites(&self) -> BTreeSet<SiteKey> {
        self.hits.keys().copied().collect()
    }

    /// The hits recorded in `self` but not in the earlier snapshot
    /// `earlier` (per-site saturating subtraction; sites whose count
    /// reaches zero are dropped). Because hit counts only grow between
    /// two snapshots of the same process, `start.union(&d) == end` holds
    /// for `d = end.delta(&start)` — campaigns use this to carve their
    /// own coverage out of the process-global state.
    pub fn delta(&self, earlier: &CoverageSnapshot) -> CoverageSnapshot {
        let mut hits = BTreeMap::new();
        for (site, count) in &self.hits {
            let d = count.saturating_sub(*earlier.hits.get(site).unwrap_or(&0));
            if d > 0 {
                hits.insert(*site, d);
            }
        }
        CoverageSnapshot { hits }
    }

    /// Union of the sites in two snapshots.
    pub fn union(&self, other: &CoverageSnapshot) -> CoverageSnapshot {
        let mut hits = self.hits.clone();
        for (k, v) in &other.hits {
            *hits.entry(*k).or_insert(0) += v;
        }
        CoverageSnapshot { hits }
    }

    /// Whether this snapshot covers every site `other` covers.
    pub fn covers(&self, other: &CoverageSnapshot) -> bool {
        other.hits.keys().all(|k| self.hits.contains_key(k))
    }

    /// Number of distinct sites hit.
    pub fn len(&self) -> usize {
        self.hits.len()
    }

    /// True when nothing has been hit.
    pub fn is_empty(&self) -> bool {
        self.hits.is_empty()
    }

    /// Percentage of `universe` sites of `kind` that this snapshot hits.
    /// Returns 0 when the universe has no sites of the kind.
    pub fn percent_of(&self, universe: &BTreeSet<SiteKey>, kind: ProbeKind) -> f64 {
        let total = universe.iter().filter(|(_, k, _)| *k == kind).count();
        if total == 0 {
            return 0.0;
        }
        let hit = self
            .hits
            .keys()
            .filter(|site @ (_, k, _)| *k == kind && universe.contains(*site))
            .count();
        100.0 * hit as f64 / total as f64
    }
}

impl yinyang_rt::json::ToJson for CoverageSnapshot {
    fn to_json(&self) -> yinyang_rt::json::Json {
        use yinyang_rt::json::Json;
        Json::obj(ProbeKind::ALL.map(|kind| {
            let detail = Json::obj([
                ("sites", Json::Int(self.hits_of_kind(kind) as i64)),
                ("hits", Json::Int(self.count_of_kind(kind) as i64)),
            ]);
            let name = match kind {
                ProbeKind::Line => "lines",
                ProbeKind::Function => "functions",
                ProbeKind::Branch => "branches",
            };
            (name, detail)
        }))
    }
}

/// Publishes a snapshot's per-kind site and hit counts as metrics gauges
/// (`coverage.<kind>.sites` / `coverage.<kind>.hits`), making coverage just
/// another metrics export alongside solver statistics.
pub fn export_metrics(snap: &CoverageSnapshot) {
    for kind in ProbeKind::ALL {
        let name = match kind {
            ProbeKind::Line => "lines",
            ProbeKind::Function => "functions",
            ProbeKind::Branch => "branches",
        };
        yinyang_rt::metrics::gauge_set(
            &format!("coverage.{name}.sites"),
            snap.hits_of_kind(kind) as i64,
        );
        yinyang_rt::metrics::gauge_set(
            &format!("coverage.{name}.hits"),
            snap.count_of_kind(kind) as i64,
        );
    }
}

/// An owned, serializable coverage map — the cross-process counterpart
/// of [`CoverageSnapshot`], whose `&'static str` site keys cannot be
/// deserialized. Fleet workers ship their per-round job coverage deltas
/// to the supervisor as `CoverageMap`s; per-site hit counts are
/// additive, so merging every worker's delta into the supervisor's own
/// snapshot reconstructs exactly the single-process coverage state
/// (DESIGN §8).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CoverageMap {
    hits: BTreeMap<(String, ProbeKind, bool), u64>,
}

impl CoverageMap {
    /// Copies a snapshot's sites into owned keys.
    pub fn from_snapshot(snap: &CoverageSnapshot) -> CoverageMap {
        let mut hits = BTreeMap::new();
        for ((name, kind, arm), count) in &snap.hits {
            hits.insert(((*name).to_owned(), *kind, *arm), *count);
        }
        CoverageMap { hits }
    }

    /// Adds `other`'s per-site counts into this map.
    pub fn merge(&mut self, other: &CoverageMap) {
        for (site, count) in &other.hits {
            *self.hits.entry(site.clone()).or_insert(0) += count;
        }
    }

    /// Distinct sites hit, by kind.
    pub fn hits_of_kind(&self, kind: ProbeKind) -> usize {
        self.hits.keys().filter(|(_, k, _)| *k == kind).count()
    }

    /// Total hit count (including repeats) for all sites of a kind.
    pub fn count_of_kind(&self, kind: ProbeKind) -> u64 {
        self.hits.iter().filter(|((_, k, _), _)| *k == kind).map(|(_, c)| c).sum()
    }

    /// Number of distinct sites hit.
    pub fn len(&self) -> usize {
        self.hits.len()
    }

    /// True when nothing has been hit.
    pub fn is_empty(&self) -> bool {
        self.hits.is_empty()
    }

    /// Publishes this map's per-kind site and hit counts as metrics
    /// gauges, same names as [`export_metrics`].
    pub fn export_metrics(&self) {
        for kind in ProbeKind::ALL {
            let name = match kind {
                ProbeKind::Line => "lines",
                ProbeKind::Function => "functions",
                ProbeKind::Branch => "branches",
            };
            yinyang_rt::metrics::gauge_set(
                &format!("coverage.{name}.sites"),
                self.hits_of_kind(kind) as i64,
            );
            yinyang_rt::metrics::gauge_set(
                &format!("coverage.{name}.hits"),
                self.count_of_kind(kind) as i64,
            );
        }
    }
}

impl yinyang_rt::json::ToJson for CoverageMap {
    /// `{"sites": [[name, kind-label, arm, count], ...]}` — flat,
    /// order-stable (BTreeMap iteration), and compact enough for
    /// per-round partial files.
    fn to_json(&self) -> yinyang_rt::json::Json {
        use yinyang_rt::json::Json;
        let sites = self
            .hits
            .iter()
            .map(|((name, kind, arm), count)| {
                Json::Arr(vec![
                    Json::Str(name.clone()),
                    Json::Str(kind.label().to_owned()),
                    Json::Bool(*arm),
                    Json::Int(*count as i64),
                ])
            })
            .collect();
        Json::obj([("sites", Json::Arr(sites))])
    }
}

impl yinyang_rt::json::FromJson for CoverageMap {
    fn from_json(
        json: &yinyang_rt::json::Json,
    ) -> Result<CoverageMap, yinyang_rt::json::JsonError> {
        use yinyang_rt::json::{Json, JsonError};
        let err = |message: String| JsonError { pos: 0, message };
        let sites = json
            .get("sites")
            .and_then(Json::as_arr)
            .ok_or_else(|| err("coverage map: want {\"sites\": [...]}".to_owned()))?;
        let mut hits = BTreeMap::new();
        for entry in sites {
            let parts = entry.as_arr().filter(|p| p.len() == 4).ok_or_else(|| {
                err("coverage map: site wants [name, kind, arm, count]".to_owned())
            })?;
            let name = parts[0]
                .as_str()
                .ok_or_else(|| err("coverage map: site name wants a string".to_owned()))?;
            let kind = parts[1]
                .as_str()
                .and_then(ProbeKind::from_label)
                .ok_or_else(|| err("coverage map: bad probe kind label".to_owned()))?;
            let arm = parts[2]
                .as_bool()
                .ok_or_else(|| err("coverage map: site arm wants a bool".to_owned()))?;
            let count = parts[3]
                .as_i64()
                .filter(|c| *c > 0)
                .ok_or_else(|| err("coverage map: site count wants a positive int".to_owned()))?;
            if hits.insert((name.to_owned(), kind, arm), count as u64).is_some() {
                return Err(err(format!("coverage map: duplicate site `{name}`")));
            }
        }
        Ok(CoverageMap { hits })
    }
}

/// Takes a snapshot of hits since the last [`reset`].
pub fn snapshot() -> CoverageSnapshot {
    let s = state().lock().expect("coverage state poisoned");
    CoverageSnapshot { hits: s.hits.clone() }
}

/// Every probe site the process has ever observed (the Fig. 11 denominator).
pub fn universe() -> BTreeSet<SiteKey> {
    state().lock().expect("coverage state poisoned").universe.clone()
}

/// Records a function-entry probe.
#[macro_export]
macro_rules! probe_fn {
    ($name:expr) => {
        $crate::record($name, $crate::ProbeKind::Function, true)
    };
}

/// Records a line/statement probe.
#[macro_export]
macro_rules! probe_line {
    ($name:expr) => {
        $crate::record($name, $crate::ProbeKind::Line, true)
    };
}

/// Records a branch probe for the boolean `$cond`, returning `$cond` so the
/// macro wraps conditions transparently:
/// `if probe_branch!("simplex::bounded", x > 0) { ... }`.
#[macro_export]
macro_rules! probe_branch {
    ($name:expr, $cond:expr) => {{
        let cond: bool = $cond;
        $crate::record($name, $crate::ProbeKind::Branch, cond);
        cond
    }};
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::MutexGuard;

    /// Coverage state is global; serialize tests touching it.
    fn lock_tests() -> MutexGuard<'static, ()> {
        static GUARD: OnceLock<Mutex<()>> = OnceLock::new();
        GUARD.get_or_init(|| Mutex::new(())).lock().unwrap_or_else(|poison| poison.into_inner())
    }

    #[test]
    fn record_and_snapshot() {
        let _g = lock_tests();
        reset();
        record("t::f1", ProbeKind::Function, true);
        record("t::f1", ProbeKind::Function, true);
        record("t::l1", ProbeKind::Line, true);
        let snap = snapshot();
        assert_eq!(snap.hits_of_kind(ProbeKind::Function), 1);
        assert_eq!(snap.count_of_kind(ProbeKind::Function), 2);
        assert_eq!(snap.hits_of_kind(ProbeKind::Line), 1);
        assert_eq!(snap.hits_of_kind(ProbeKind::Branch), 0);
    }

    #[test]
    fn branch_macro_returns_condition() {
        let _g = lock_tests();
        reset();
        let x = 5;
        let taken = probe_branch!("t::br", x > 3);
        assert!(taken);
        let not_taken = probe_branch!("t::br", x > 10);
        assert!(!not_taken);
        let snap = snapshot();
        // Two arms = two distinct branch sites.
        assert_eq!(snap.hits_of_kind(ProbeKind::Branch), 2);
    }

    #[test]
    fn reset_preserves_universe() {
        let _g = lock_tests();
        reset();
        record("t::u1", ProbeKind::Line, true);
        reset();
        assert!(
            snapshot().is_empty()
                || !snapshot().sites().contains(&("t::u1", ProbeKind::Line, true))
        );
        assert!(universe().contains(&("t::u1", ProbeKind::Line, true)));
    }

    #[test]
    fn percent_against_universe() {
        let _g = lock_tests();
        reset();
        record("t::p1", ProbeKind::Line, true);
        record("t::p2", ProbeKind::Line, true);
        let both = snapshot();
        reset();
        record("t::p1", ProbeKind::Line, true);
        let one = snapshot();
        let mut uni = BTreeSet::new();
        uni.insert(("t::p1", ProbeKind::Line, true));
        uni.insert(("t::p2", ProbeKind::Line, true));
        assert_eq!(both.percent_of(&uni, ProbeKind::Line), 100.0);
        assert_eq!(one.percent_of(&uni, ProbeKind::Line), 50.0);
        assert_eq!(one.percent_of(&uni, ProbeKind::Branch), 0.0);
    }

    #[test]
    fn delta_subtracts_hit_counts_and_drops_dead_sites() {
        let _g = lock_tests();
        reset();
        record("t::d1", ProbeKind::Line, true);
        record("t::d1", ProbeKind::Line, true);
        let start = snapshot();
        record("t::d1", ProbeKind::Line, true);
        record("t::d2", ProbeKind::Function, true);
        let end = snapshot();
        let d = end.delta(&start);
        assert_eq!(d.count_of_kind(ProbeKind::Line), 1);
        assert_eq!(d.hits_of_kind(ProbeKind::Function), 1);
        assert_eq!(start.union(&d), end, "delta inverts union");
        assert!(end.delta(&end).is_empty());
    }

    #[test]
    fn coverage_map_roundtrips_and_merges_additively() {
        use yinyang_rt::json::{FromJson, ToJson};
        let _g = lock_tests();
        reset();
        record("t::m1", ProbeKind::Line, true);
        record("t::m1", ProbeKind::Line, true);
        let first = snapshot();
        record("t::m1", ProbeKind::Line, true);
        record("t::m2", ProbeKind::Branch, false);
        let end = snapshot();

        // JSON roundtrip is exact.
        let map = CoverageMap::from_snapshot(&end);
        let back = CoverageMap::from_json(&map.to_json()).expect("roundtrip");
        assert_eq!(back, map);

        // Merging the two halves of a process's history equals the whole:
        // per-site counts are additive, the property the fleet merge
        // rests on.
        let mut merged = CoverageMap::from_snapshot(&first);
        merged.merge(&CoverageMap::from_snapshot(&end.delta(&first)));
        assert_eq!(merged, map);
        assert_eq!(merged.count_of_kind(ProbeKind::Line), 3);
        assert_eq!(merged.hits_of_kind(ProbeKind::Branch), 1);
    }

    #[test]
    fn union_and_covers() {
        let _g = lock_tests();
        reset();
        record("t::a", ProbeKind::Line, true);
        let a = snapshot();
        reset();
        record("t::b", ProbeKind::Line, true);
        let b = snapshot();
        let u = a.union(&b);
        assert_eq!(u.len(), 2);
        assert!(u.covers(&a) && u.covers(&b));
        assert!(!a.covers(&b));
    }
}
